//! Scalar (base) instruction set: integer, floating-point, memory and
//! control-flow operations.
//!
//! The paper's base ISA is Alpha; for trace-driven timing simulation only
//! the operation *classes*, latencies, and register/memory operands
//! matter, so this module defines a compact generic RISC vocabulary with
//! the same class granularity the paper reports in its instruction
//! breakdown (integer / floating point / memory).

use serde::{Deserialize, Serialize};

/// Scalar integer ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum IntOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Nor,
    Sll,
    Srl,
    Sra,
    /// Set-if-less-than (signed compare producing 0/1).
    Slt,
    /// Set-if-less-than unsigned.
    Sltu,
    /// Compare-equal producing 0/1.
    Seq,
    /// Load upper immediate / immediate materialization.
    Lui,
    /// Add immediate (also used for address arithmetic).
    Addi,
    /// Integer multiply (longer latency pipe).
    Mul,
    /// Integer multiply-high.
    Mulh,
    /// Integer divide (unpipelined, long latency).
    Div,
    /// Remainder.
    Rem,
    /// Count leading zeros.
    Clz,
    /// Byte/halfword extract-and-extend (Alpha-style byte manipulation).
    Ext,
    /// Byte/halfword insert.
    Ins,
    /// Conditional move.
    Cmov,
}

impl IntOp {
    /// All integer opcodes in a stable order.
    pub const ALL: [IntOp; 22] = [
        IntOp::Add,
        IntOp::Sub,
        IntOp::And,
        IntOp::Or,
        IntOp::Xor,
        IntOp::Nor,
        IntOp::Sll,
        IntOp::Srl,
        IntOp::Sra,
        IntOp::Slt,
        IntOp::Sltu,
        IntOp::Seq,
        IntOp::Lui,
        IntOp::Addi,
        IntOp::Mul,
        IntOp::Mulh,
        IntOp::Div,
        IntOp::Rem,
        IntOp::Clz,
        IntOp::Ext,
        IntOp::Ins,
        IntOp::Cmov,
    ];

    /// Number of integer opcodes.
    pub const COUNT: usize = Self::ALL.len();

    /// Whether this op uses the (longer-latency) multiply/divide pipe.
    #[must_use]
    pub const fn is_long_latency(self) -> bool {
        matches!(self, IntOp::Mul | IntOp::Mulh | IntOp::Div | IntOp::Rem)
    }

    /// Mnemonic used by the disassembler.
    #[must_use]
    pub const fn mnemonic(self) -> &'static str {
        match self {
            IntOp::Add => "add",
            IntOp::Sub => "sub",
            IntOp::And => "and",
            IntOp::Or => "or",
            IntOp::Xor => "xor",
            IntOp::Nor => "nor",
            IntOp::Sll => "sll",
            IntOp::Srl => "srl",
            IntOp::Sra => "sra",
            IntOp::Slt => "slt",
            IntOp::Sltu => "sltu",
            IntOp::Seq => "seq",
            IntOp::Lui => "lui",
            IntOp::Addi => "addi",
            IntOp::Mul => "mul",
            IntOp::Mulh => "mulh",
            IntOp::Div => "div",
            IntOp::Rem => "rem",
            IntOp::Clz => "clz",
            IntOp::Ext => "ext",
            IntOp::Ins => "ins",
            IntOp::Cmov => "cmov",
        }
    }
}

/// Scalar floating-point operations (mesa's 3D pipeline is the main FP
/// consumer in the workload; the paper's emulation libraries had no FP
/// μ-SIMD, so FP stays scalar).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum FpOp {
    FAdd,
    FSub,
    FMul,
    FDiv,
    FSqrt,
    /// Fused multiply-add.
    FMadd,
    FCmp,
    /// Int ↔ float conversions.
    FCvt,
    FAbs,
    FNeg,
    FMin,
    FMax,
}

impl FpOp {
    /// All floating-point opcodes in a stable order.
    pub const ALL: [FpOp; 12] = [
        FpOp::FAdd,
        FpOp::FSub,
        FpOp::FMul,
        FpOp::FDiv,
        FpOp::FSqrt,
        FpOp::FMadd,
        FpOp::FCmp,
        FpOp::FCvt,
        FpOp::FAbs,
        FpOp::FNeg,
        FpOp::FMin,
        FpOp::FMax,
    ];

    /// Number of floating-point opcodes.
    pub const COUNT: usize = Self::ALL.len();

    /// Whether this op is unpipelined / long latency (divide, sqrt).
    #[must_use]
    pub const fn is_long_latency(self) -> bool {
        matches!(self, FpOp::FDiv | FpOp::FSqrt)
    }

    /// Mnemonic used by the disassembler.
    #[must_use]
    pub const fn mnemonic(self) -> &'static str {
        match self {
            FpOp::FAdd => "fadd",
            FpOp::FSub => "fsub",
            FpOp::FMul => "fmul",
            FpOp::FDiv => "fdiv",
            FpOp::FSqrt => "fsqrt",
            FpOp::FMadd => "fmadd",
            FpOp::FCmp => "fcmp",
            FpOp::FCvt => "fcvt",
            FpOp::FAbs => "fabs",
            FpOp::FNeg => "fneg",
            FpOp::FMin => "fmin",
            FpOp::FMax => "fmax",
        }
    }
}

/// Scalar memory operations (integer and FP loads/stores of 1–8 bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum MemOp {
    LoadB,
    LoadBu,
    LoadH,
    LoadHu,
    LoadW,
    LoadWu,
    LoadD,
    StoreB,
    StoreH,
    StoreW,
    StoreD,
    /// FP 32-bit load.
    LoadF,
    /// FP 64-bit load.
    LoadG,
    /// FP 32-bit store.
    StoreF,
    /// FP 64-bit store.
    StoreG,
    /// Software prefetch hint (paper §2: stream prefetching instructions).
    Prefetch,
}

impl MemOp {
    /// All scalar memory opcodes in a stable order.
    pub const ALL: [MemOp; 16] = [
        MemOp::LoadB,
        MemOp::LoadBu,
        MemOp::LoadH,
        MemOp::LoadHu,
        MemOp::LoadW,
        MemOp::LoadWu,
        MemOp::LoadD,
        MemOp::StoreB,
        MemOp::StoreH,
        MemOp::StoreW,
        MemOp::StoreD,
        MemOp::LoadF,
        MemOp::LoadG,
        MemOp::StoreF,
        MemOp::StoreG,
        MemOp::Prefetch,
    ];

    /// Number of scalar memory opcodes.
    pub const COUNT: usize = Self::ALL.len();

    /// Whether the operation writes memory.
    #[must_use]
    pub const fn is_store(self) -> bool {
        matches!(
            self,
            MemOp::StoreB
                | MemOp::StoreH
                | MemOp::StoreW
                | MemOp::StoreD
                | MemOp::StoreF
                | MemOp::StoreG
        )
    }

    /// Whether the operation reads memory into a register (prefetches
    /// access memory but produce no register value).
    #[must_use]
    pub const fn is_load(self) -> bool {
        !self.is_store() && !matches!(self, MemOp::Prefetch)
    }

    /// Whether the destination/source register is floating point.
    #[must_use]
    pub const fn is_fp(self) -> bool {
        matches!(
            self,
            MemOp::LoadF | MemOp::LoadG | MemOp::StoreF | MemOp::StoreG
        )
    }

    /// Access size in bytes.
    #[must_use]
    pub const fn size(self) -> u8 {
        match self {
            MemOp::LoadB | MemOp::LoadBu | MemOp::StoreB => 1,
            MemOp::LoadH | MemOp::LoadHu | MemOp::StoreH => 2,
            MemOp::LoadW | MemOp::LoadWu | MemOp::StoreW | MemOp::LoadF | MemOp::StoreF => 4,
            MemOp::LoadD | MemOp::StoreD | MemOp::LoadG | MemOp::StoreG => 8,
            MemOp::Prefetch => 32,
        }
    }

    /// Mnemonic used by the disassembler.
    #[must_use]
    pub const fn mnemonic(self) -> &'static str {
        match self {
            MemOp::LoadB => "ldb",
            MemOp::LoadBu => "ldbu",
            MemOp::LoadH => "ldh",
            MemOp::LoadHu => "ldhu",
            MemOp::LoadW => "ldw",
            MemOp::LoadWu => "ldwu",
            MemOp::LoadD => "ldd",
            MemOp::StoreB => "stb",
            MemOp::StoreH => "sth",
            MemOp::StoreW => "stw",
            MemOp::StoreD => "std",
            MemOp::LoadF => "ldf",
            MemOp::LoadG => "ldg",
            MemOp::StoreF => "stf",
            MemOp::StoreG => "stg",
            MemOp::Prefetch => "pref",
        }
    }
}

/// Control-flow operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum CtlOp {
    /// Conditional branch, equal to zero.
    Beq,
    /// Conditional branch, not equal to zero.
    Bne,
    /// Conditional branch, less than zero.
    Blt,
    /// Conditional branch, greater or equal to zero.
    Bge,
    /// Unconditional direct jump.
    Jump,
    /// Direct call (pushes return address).
    Call,
    /// Indirect return.
    Ret,
    /// Indirect jump through register (switch tables).
    JumpR,
    /// No-op (used for alignment padding).
    Nop,
}

impl CtlOp {
    /// All control opcodes in a stable order.
    pub const ALL: [CtlOp; 9] = [
        CtlOp::Beq,
        CtlOp::Bne,
        CtlOp::Blt,
        CtlOp::Bge,
        CtlOp::Jump,
        CtlOp::Call,
        CtlOp::Ret,
        CtlOp::JumpR,
        CtlOp::Nop,
    ];

    /// Number of control opcodes.
    pub const COUNT: usize = Self::ALL.len();

    /// Whether the op is a conditional branch (predicted direction).
    #[must_use]
    pub const fn is_conditional(self) -> bool {
        matches!(self, CtlOp::Beq | CtlOp::Bne | CtlOp::Blt | CtlOp::Bge)
    }

    /// Whether the target is only known at execute time (indirect).
    #[must_use]
    pub const fn is_indirect(self) -> bool {
        matches!(self, CtlOp::Ret | CtlOp::JumpR)
    }

    /// Whether this op transfers control at all.
    #[must_use]
    pub const fn is_transfer(self) -> bool {
        !matches!(self, CtlOp::Nop)
    }

    /// Mnemonic used by the disassembler.
    #[must_use]
    pub const fn mnemonic(self) -> &'static str {
        match self {
            CtlOp::Beq => "beq",
            CtlOp::Bne => "bne",
            CtlOp::Blt => "blt",
            CtlOp::Bge => "bge",
            CtlOp::Jump => "j",
            CtlOp::Call => "call",
            CtlOp::Ret => "ret",
            CtlOp::JumpR => "jr",
            CtlOp::Nop => "nop",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_arrays_are_duplicate_free() {
        let ints: HashSet<_> = IntOp::ALL.iter().collect();
        assert_eq!(ints.len(), IntOp::COUNT);
        let fps: HashSet<_> = FpOp::ALL.iter().collect();
        assert_eq!(fps.len(), FpOp::COUNT);
        let mems: HashSet<_> = MemOp::ALL.iter().collect();
        assert_eq!(mems.len(), MemOp::COUNT);
        let ctls: HashSet<_> = CtlOp::ALL.iter().collect();
        assert_eq!(ctls.len(), CtlOp::COUNT);
    }

    #[test]
    fn memory_classification() {
        assert!(MemOp::StoreW.is_store());
        assert!(!MemOp::StoreW.is_load());
        assert!(MemOp::LoadBu.is_load());
        assert!(!MemOp::Prefetch.is_load());
        assert!(!MemOp::Prefetch.is_store());
        assert!(MemOp::LoadG.is_fp());
        assert!(!MemOp::LoadD.is_fp());
    }

    #[test]
    fn memory_sizes() {
        assert_eq!(MemOp::LoadB.size(), 1);
        assert_eq!(MemOp::LoadH.size(), 2);
        assert_eq!(MemOp::LoadF.size(), 4);
        assert_eq!(MemOp::StoreG.size(), 8);
    }

    #[test]
    fn control_classification() {
        assert!(CtlOp::Beq.is_conditional());
        assert!(!CtlOp::Jump.is_conditional());
        assert!(CtlOp::Ret.is_indirect());
        assert!(!CtlOp::Call.is_indirect());
        assert!(!CtlOp::Nop.is_transfer());
    }

    #[test]
    fn long_latency_classification() {
        assert!(IntOp::Div.is_long_latency());
        assert!(!IntOp::Add.is_long_latency());
        assert!(FpOp::FSqrt.is_long_latency());
        assert!(!FpOp::FMadd.is_long_latency());
    }

    #[test]
    fn mnemonics_are_unique_per_class() {
        let m: HashSet<_> = IntOp::ALL.iter().map(|o| o.mnemonic()).collect();
        assert_eq!(m.len(), IntOp::COUNT);
        let m: HashSet<_> = MemOp::ALL.iter().map(|o| o.mnemonic()).collect();
        assert_eq!(m.len(), MemOp::COUNT);
    }
}
