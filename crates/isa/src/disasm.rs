//! Textual disassembly of instructions.
//!
//! Produces a one-line assembly-like rendering including the dynamic
//! trace annotations (effective address, branch outcome, stream length),
//! which makes simulator debug logs and failing-test output readable.

use crate::inst::Inst;
use crate::op::Op;

/// Render `inst` as a one-line string.
///
/// Format: `mnemonic dst, src1, src2, src3 [#imm] [vl=N] [@addr(+strideXcount)] [taken->target]`.
#[must_use]
pub fn disasm(inst: &Inst) -> String {
    use core::fmt::Write as _;
    let mut out = String::with_capacity(48);
    out.push_str(inst.op.mnemonic());
    let mut first = true;
    let sep = |out: &mut String, first: &mut bool| {
        out.push_str(if *first { " " } else { ", " });
        *first = false;
    };
    if let Some(d) = inst.dst {
        sep(&mut out, &mut first);
        let _ = write!(out, "{d}");
    }
    for s in inst.sources() {
        sep(&mut out, &mut first);
        let _ = write!(out, "{s}");
    }
    if inst.imm != 0 {
        let _ = write!(out, " #{}", inst.imm);
    }
    if matches!(inst.op, Op::Mom(_)) {
        let _ = write!(out, " vl={}", inst.slen);
    }
    if let Some(m) = inst.mem {
        if m.count > 1 {
            let _ = write!(out, " @{:#x}(+{}x{})", m.addr, m.stride, m.count);
        } else {
            let _ = write!(out, " @{:#x}", m.addr);
        }
    }
    if let Some(b) = inst.branch {
        if b.taken {
            let _ = write!(out, " taken->{:#x}", b.target);
        } else {
            let _ = write!(out, " not-taken");
        }
    }
    out
}

impl core::fmt::Display for Inst {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&disasm(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmx::MmxOp;
    use crate::mom::MomOp;
    use crate::regs::{int, simd, stream};
    use crate::scalar::{CtlOp, IntOp, MemOp};

    #[test]
    fn scalar_forms() {
        let i = Inst::int_rrr(IntOp::Add, int(1), int(2), int(3));
        assert_eq!(disasm(&i), "add r1, r2, r3");
        let i = Inst::int_rri(IntOp::Addi, int(1), int(2), 16);
        assert_eq!(disasm(&i), "addi r1, r2 #16");
    }

    #[test]
    fn memory_forms() {
        let i = Inst::load(MemOp::LoadW, int(4), int(5), 0x1000);
        assert_eq!(disasm(&i), "ldw r4, r5 @0x1000");
        let i = Inst::mom_load(stream(2), int(1), 0x2000, 768, 8);
        assert_eq!(disasm(&i), "vlds.q v2, r1 vl=8 @0x2000(+768x8)");
    }

    #[test]
    fn branch_forms() {
        let b = Inst::branch(CtlOp::Bne, int(9), true, 0x40);
        assert_eq!(disasm(&b), "bne r9 taken->0x40");
        let b = Inst::branch(CtlOp::Beq, int(9), false, 0x40);
        assert_eq!(disasm(&b), "beq r9 not-taken");
    }

    #[test]
    fn simd_forms() {
        let m = Inst::mmx(MmxOp::PaddsW, simd(0), simd(1), simd(2));
        assert_eq!(disasm(&m), "padds.w m0, m1, m2");
        let v = Inst::mom(MomOp::VmaddWd, stream(0), stream(1), stream(2), 16);
        assert_eq!(disasm(&v), "vmadd.wd v0, v1, v2 vl=16");
    }

    #[test]
    fn display_impl_matches_disasm() {
        let i = Inst::int_rrr(IntOp::Xor, int(7), int(7), int(7));
        assert_eq!(format!("{i}"), disasm(&i));
    }

    #[test]
    fn every_opcode_disassembles_nonempty() {
        for op in Op::all() {
            let i = Inst::new(op);
            assert!(!disasm(&i).is_empty(), "{op:?}");
        }
    }
}
