//! MOM — the streaming vector μ-SIMD extension.
//!
//! MOM ("Exploiting a new level of DLP in multimedia applications",
//! Corbal/Espasa/Valero, MICRO-32 1999) combines packed μ-SIMD with a
//! conventional vector ISA: one MOM instruction applies an MMX-like
//! operation over a *stream* of up to 16 consecutive 64-bit element
//! groups held in a stream register. The HPCA 2001 paper models MOM with
//! **121 opcodes**, **16 logical stream registers** (16 × 64-bit each),
//! **2 packed accumulators of 192 bits**, and a **stream-length register**
//! renamed through the integer pool. Stream memory instructions add a
//! **stride** between consecutive element groups, which "allows to work
//! over small sparse matrices of data" (image/video rows).
//!
//! Opcode families:
//!
//! * `V*` vector-vector forms mirroring the MMX families;
//! * `*Vs` vector-scalar forms (second operand is an MMX register
//!   broadcast across the stream, MDMX-style);
//! * `Acc*` / `RdAcc*` packed-accumulator reduction ops;
//! * `Vload*` / `Vstore*` stream memory with unit or arbitrary stride;
//! * movement/misc (broadcast, insert/extract, select, clip, transpose).

use crate::elem::ElemType;
use crate::mmx::MmxOp;
use serde::{Deserialize, Serialize};

/// A MOM streaming μ-SIMD opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum MomOp {
    // -- stream packed add/sub, wrapping (6) ---------------------------
    VaddB,
    VaddW,
    VaddD,
    VsubB,
    VsubW,
    VsubD,
    // -- stream packed add/sub, saturating (8) --------------------------
    VaddsB,
    VaddsW,
    VaddusB,
    VaddusW,
    VsubsB,
    VsubsW,
    VsubusB,
    VsubusW,
    // -- stream multiplies (4) ------------------------------------------
    VmullW,
    VmulhW,
    VmulhuW,
    VmaddWd,
    // -- stream compares (6) ----------------------------------------------
    VcmpeqB,
    VcmpeqW,
    VcmpeqD,
    VcmpgtB,
    VcmpgtW,
    VcmpgtD,
    // -- stream logicals (4) -----------------------------------------------
    Vand,
    Vandn,
    Vor,
    Vxor,
    // -- stream shifts (8) ---------------------------------------------------
    VsllW,
    VsllD,
    VsllQ,
    VsrlW,
    VsrlD,
    VsrlQ,
    VsraW,
    VsraD,
    // -- stream pack/unpack (9) -----------------------------------------------
    VpackssWb,
    VpackssDw,
    VpackusWb,
    VpunpcklBw,
    VpunpcklWd,
    VpunpcklDq,
    VpunpckhBw,
    VpunpckhWd,
    VpunpckhDq,
    // -- stream avg/min/max/sad (7) ---------------------------------------------
    VavgB,
    VavgW,
    VmaxUb,
    VmaxSw,
    VminUb,
    VminSw,
    VsadBw,
    // -- vector-scalar forms (16): MMX register broadcast as 2nd operand ----------
    VaddBVs,
    VaddWVs,
    VaddDVs,
    VsubBVs,
    VsubWVs,
    VsubDVs,
    VmullWVs,
    VmulhWVs,
    VmaddWdVs,
    VmaxSwVs,
    VminSwVs,
    VmaxUbVs,
    VminUbVs,
    VandVs,
    VorVs,
    VxorVs,
    // -- packed accumulator ops (17) ------------------------------------------------
    /// Accumulate byte lanes of a whole stream into the 192-bit accumulator.
    AccAddB,
    /// Accumulate word lanes of a whole stream.
    AccAddW,
    AccSubB,
    AccSubW,
    /// Signed 16-bit multiply-accumulate across the stream.
    AccMacW,
    /// Unsigned 16-bit multiply-accumulate across the stream.
    AccMacuW,
    /// Pairwise 16×16→32 multiply-add accumulate (dot product step).
    AccMaddWd,
    /// Sum-of-absolute-differences accumulate (motion estimation).
    AccSadB,
    /// Read accumulator back to an MMX register with signed saturation (bytes).
    RdAccSatB,
    /// Read accumulator back with signed saturation (words).
    RdAccSatW,
    /// Read accumulator back with rounding shift (bytes).
    RdAccRndB,
    /// Read accumulator back with rounding shift (words).
    RdAccRndW,
    /// Horizontal sum of accumulator lanes into an integer register.
    AccRedAddW,
    /// Horizontal sum of dword accumulator lanes.
    AccRedAddD,
    /// Horizontal max of accumulator lanes.
    AccRedMaxW,
    /// Horizontal min of accumulator lanes.
    AccRedMinW,
    /// Clear the accumulator.
    AccClear,
    // -- stream memory (6) -------------------------------------------------------------
    /// Unit-stride stream load of 64-bit groups.
    VloadQ,
    /// Unit-stride stream store of 64-bit groups.
    VstoreQ,
    /// Strided stream load (stride in bytes between 64-bit groups).
    VloadStride,
    /// Strided stream store.
    VstoreStride,
    /// Unit-stride stream load of 32-bit groups (zero-extended).
    VloadD,
    /// Unit-stride stream store of 32-bit groups.
    VstoreD,
    // -- movement & control (8) -----------------------------------------------------------
    /// Stream register move.
    Vmov,
    /// Insert an MMX register into a stream element group.
    VinsQ,
    /// Extract a stream element group into an MMX register.
    VextQ,
    /// Broadcast an integer byte value across a whole stream.
    VbcastB,
    /// Broadcast a 16-bit value across a whole stream.
    VbcastW,
    /// Broadcast a 32-bit value across a whole stream.
    VbcastD,
    /// Set the stream-length register (renamed through the integer pool).
    SetVl,
    /// Zero a stream register.
    Vzero,
    // -- shuffle/select/misc (22) ------------------------------------------------------------
    VshufW,
    /// Lane select under mask (bytes).
    VselB,
    VselW,
    VselD,
    /// Absolute difference (bytes).
    VabsdB,
    VabsdW,
    /// Logical shift right with rounding.
    VsrlRndW,
    VsrlRndD,
    /// Arithmetic shift right with rounding.
    VsraRndW,
    VsraRndD,
    /// Clip signed words to a range.
    VclipSw,
    /// Clip to unsigned byte range.
    VclipUb,
    /// Count leading zeros per word lane.
    VclzW,
    /// Population count per byte lane.
    VpcntB,
    VmaxUw,
    VmaxSb,
    VminUw,
    VminSb,
    /// Fixed-point multiply-and-shift (scale) on words.
    VscaleW,
    /// Fixed-point multiply-and-shift on dwords.
    VscaleD,
    /// Stream prefetch hint.
    Vprefetch,
    /// Matrix transpose helper across element groups.
    Vtrans,
}

impl MomOp {
    /// All 121 MOM opcodes in a stable order.
    pub const ALL: [MomOp; 121] = [
        MomOp::VaddB,
        MomOp::VaddW,
        MomOp::VaddD,
        MomOp::VsubB,
        MomOp::VsubW,
        MomOp::VsubD,
        MomOp::VaddsB,
        MomOp::VaddsW,
        MomOp::VaddusB,
        MomOp::VaddusW,
        MomOp::VsubsB,
        MomOp::VsubsW,
        MomOp::VsubusB,
        MomOp::VsubusW,
        MomOp::VmullW,
        MomOp::VmulhW,
        MomOp::VmulhuW,
        MomOp::VmaddWd,
        MomOp::VcmpeqB,
        MomOp::VcmpeqW,
        MomOp::VcmpeqD,
        MomOp::VcmpgtB,
        MomOp::VcmpgtW,
        MomOp::VcmpgtD,
        MomOp::Vand,
        MomOp::Vandn,
        MomOp::Vor,
        MomOp::Vxor,
        MomOp::VsllW,
        MomOp::VsllD,
        MomOp::VsllQ,
        MomOp::VsrlW,
        MomOp::VsrlD,
        MomOp::VsrlQ,
        MomOp::VsraW,
        MomOp::VsraD,
        MomOp::VpackssWb,
        MomOp::VpackssDw,
        MomOp::VpackusWb,
        MomOp::VpunpcklBw,
        MomOp::VpunpcklWd,
        MomOp::VpunpcklDq,
        MomOp::VpunpckhBw,
        MomOp::VpunpckhWd,
        MomOp::VpunpckhDq,
        MomOp::VavgB,
        MomOp::VavgW,
        MomOp::VmaxUb,
        MomOp::VmaxSw,
        MomOp::VminUb,
        MomOp::VminSw,
        MomOp::VsadBw,
        MomOp::VaddBVs,
        MomOp::VaddWVs,
        MomOp::VaddDVs,
        MomOp::VsubBVs,
        MomOp::VsubWVs,
        MomOp::VsubDVs,
        MomOp::VmullWVs,
        MomOp::VmulhWVs,
        MomOp::VmaddWdVs,
        MomOp::VmaxSwVs,
        MomOp::VminSwVs,
        MomOp::VmaxUbVs,
        MomOp::VminUbVs,
        MomOp::VandVs,
        MomOp::VorVs,
        MomOp::VxorVs,
        MomOp::AccAddB,
        MomOp::AccAddW,
        MomOp::AccSubB,
        MomOp::AccSubW,
        MomOp::AccMacW,
        MomOp::AccMacuW,
        MomOp::AccMaddWd,
        MomOp::AccSadB,
        MomOp::RdAccSatB,
        MomOp::RdAccSatW,
        MomOp::RdAccRndB,
        MomOp::RdAccRndW,
        MomOp::AccRedAddW,
        MomOp::AccRedAddD,
        MomOp::AccRedMaxW,
        MomOp::AccRedMinW,
        MomOp::AccClear,
        MomOp::VloadQ,
        MomOp::VstoreQ,
        MomOp::VloadStride,
        MomOp::VstoreStride,
        MomOp::VloadD,
        MomOp::VstoreD,
        MomOp::Vmov,
        MomOp::VinsQ,
        MomOp::VextQ,
        MomOp::VbcastB,
        MomOp::VbcastW,
        MomOp::VbcastD,
        MomOp::SetVl,
        MomOp::Vzero,
        MomOp::VshufW,
        MomOp::VselB,
        MomOp::VselW,
        MomOp::VselD,
        MomOp::VabsdB,
        MomOp::VabsdW,
        MomOp::VsrlRndW,
        MomOp::VsrlRndD,
        MomOp::VsraRndW,
        MomOp::VsraRndD,
        MomOp::VclipSw,
        MomOp::VclipUb,
        MomOp::VclzW,
        MomOp::VpcntB,
        MomOp::VmaxUw,
        MomOp::VmaxSb,
        MomOp::VminUw,
        MomOp::VminSb,
        MomOp::VscaleW,
        MomOp::VscaleD,
        MomOp::Vprefetch,
        MomOp::Vtrans,
    ];

    /// Number of MOM opcodes (121 exactly, per §3 of the paper).
    pub const COUNT: usize = Self::ALL.len();

    /// Whether this opcode accesses memory.
    #[must_use]
    pub const fn is_mem(self) -> bool {
        matches!(
            self,
            MomOp::VloadQ
                | MomOp::VstoreQ
                | MomOp::VloadStride
                | MomOp::VstoreStride
                | MomOp::VloadD
                | MomOp::VstoreD
                | MomOp::Vprefetch
        )
    }

    /// Whether this opcode writes memory.
    #[must_use]
    pub const fn is_store(self) -> bool {
        matches!(self, MomOp::VstoreQ | MomOp::VstoreStride | MomOp::VstoreD)
    }

    /// Whether the opcode uses a non-unit stride operand.
    #[must_use]
    pub const fn is_strided(self) -> bool {
        matches!(self, MomOp::VloadStride | MomOp::VstoreStride)
    }

    /// Whether this opcode uses the packed-multiply pipe.
    #[must_use]
    pub const fn is_mul(self) -> bool {
        matches!(
            self,
            MomOp::VmullW
                | MomOp::VmulhW
                | MomOp::VmulhuW
                | MomOp::VmaddWd
                | MomOp::VmullWVs
                | MomOp::VmulhWVs
                | MomOp::VmaddWdVs
                | MomOp::AccMacW
                | MomOp::AccMacuW
                | MomOp::AccMaddWd
                | MomOp::AccSadB
                | MomOp::VsadBw
                | MomOp::VscaleW
                | MomOp::VscaleD
        )
    }

    /// Whether the opcode reads or writes a packed accumulator.
    #[must_use]
    pub const fn uses_acc(self) -> bool {
        self.writes_acc() || self.reads_acc()
    }

    /// Whether the opcode writes (accumulates into or clears) an accumulator.
    #[must_use]
    pub const fn writes_acc(self) -> bool {
        matches!(
            self,
            MomOp::AccAddB
                | MomOp::AccAddW
                | MomOp::AccSubB
                | MomOp::AccSubW
                | MomOp::AccMacW
                | MomOp::AccMacuW
                | MomOp::AccMaddWd
                | MomOp::AccSadB
                | MomOp::AccClear
        )
    }

    /// Whether the opcode reads an accumulator (read-back and reductions).
    #[must_use]
    pub const fn reads_acc(self) -> bool {
        matches!(
            self,
            MomOp::RdAccSatB
                | MomOp::RdAccSatW
                | MomOp::RdAccRndB
                | MomOp::RdAccRndW
                | MomOp::AccRedAddW
                | MomOp::AccRedAddD
                | MomOp::AccRedMaxW
                | MomOp::AccRedMinW
        )
    }

    /// Whether this opcode's second source is a broadcast MMX scalar
    /// (vector-scalar form).
    #[must_use]
    pub const fn is_vector_scalar(self) -> bool {
        matches!(
            self,
            MomOp::VaddBVs
                | MomOp::VaddWVs
                | MomOp::VaddDVs
                | MomOp::VsubBVs
                | MomOp::VsubWVs
                | MomOp::VsubDVs
                | MomOp::VmullWVs
                | MomOp::VmulhWVs
                | MomOp::VmaddWdVs
                | MomOp::VmaxSwVs
                | MomOp::VminSwVs
                | MomOp::VmaxUbVs
                | MomOp::VminUbVs
                | MomOp::VandVs
                | MomOp::VorVs
                | MomOp::VxorVs
        )
    }

    /// The MMX opcode this stream opcode applies per element group, when
    /// there is a direct correspondence. Stream control, accumulator and
    /// memory ops return `None`.
    #[must_use]
    pub const fn mmx_equiv(self) -> Option<MmxOp> {
        Some(match self {
            MomOp::VaddB | MomOp::VaddBVs => MmxOp::PaddB,
            MomOp::VaddW | MomOp::VaddWVs => MmxOp::PaddW,
            MomOp::VaddD | MomOp::VaddDVs => MmxOp::PaddD,
            MomOp::VsubB | MomOp::VsubBVs => MmxOp::PsubB,
            MomOp::VsubW | MomOp::VsubWVs => MmxOp::PsubW,
            MomOp::VsubD | MomOp::VsubDVs => MmxOp::PsubD,
            MomOp::VaddsB => MmxOp::PaddsB,
            MomOp::VaddsW => MmxOp::PaddsW,
            MomOp::VaddusB => MmxOp::PaddusB,
            MomOp::VaddusW => MmxOp::PaddusW,
            MomOp::VsubsB => MmxOp::PsubsB,
            MomOp::VsubsW => MmxOp::PsubsW,
            MomOp::VsubusB => MmxOp::PsubusB,
            MomOp::VsubusW => MmxOp::PsubusW,
            MomOp::VmullW | MomOp::VmullWVs => MmxOp::PmullW,
            MomOp::VmulhW | MomOp::VmulhWVs => MmxOp::PmulhW,
            MomOp::VmulhuW => MmxOp::PmulhuW,
            MomOp::VmaddWd | MomOp::VmaddWdVs => MmxOp::PmaddWd,
            MomOp::VcmpeqB => MmxOp::PcmpeqB,
            MomOp::VcmpeqW => MmxOp::PcmpeqW,
            MomOp::VcmpeqD => MmxOp::PcmpeqD,
            MomOp::VcmpgtB => MmxOp::PcmpgtB,
            MomOp::VcmpgtW => MmxOp::PcmpgtW,
            MomOp::VcmpgtD => MmxOp::PcmpgtD,
            MomOp::Vand | MomOp::VandVs => MmxOp::Pand,
            MomOp::Vandn => MmxOp::Pandn,
            MomOp::Vor | MomOp::VorVs => MmxOp::Por,
            MomOp::Vxor | MomOp::VxorVs => MmxOp::Pxor,
            MomOp::VsllW => MmxOp::PsllW,
            MomOp::VsllD => MmxOp::PsllD,
            MomOp::VsllQ => MmxOp::PsllQ,
            MomOp::VsrlW => MmxOp::PsrlW,
            MomOp::VsrlD => MmxOp::PsrlD,
            MomOp::VsrlQ => MmxOp::PsrlQ,
            MomOp::VsraW => MmxOp::PsraW,
            MomOp::VsraD => MmxOp::PsraD,
            MomOp::VpackssWb => MmxOp::PackssWb,
            MomOp::VpackssDw => MmxOp::PackssDw,
            MomOp::VpackusWb => MmxOp::PackusWb,
            MomOp::VpunpcklBw => MmxOp::PunpcklBw,
            MomOp::VpunpcklWd => MmxOp::PunpcklWd,
            MomOp::VpunpcklDq => MmxOp::PunpcklDq,
            MomOp::VpunpckhBw => MmxOp::PunpckhBw,
            MomOp::VpunpckhWd => MmxOp::PunpckhWd,
            MomOp::VpunpckhDq => MmxOp::PunpckhDq,
            MomOp::VavgB => MmxOp::PavgB,
            MomOp::VavgW => MmxOp::PavgW,
            MomOp::VmaxUb | MomOp::VmaxUbVs => MmxOp::PmaxUb,
            MomOp::VmaxSw | MomOp::VmaxSwVs => MmxOp::PmaxSw,
            MomOp::VminUb | MomOp::VminUbVs => MmxOp::PminUb,
            MomOp::VminSw | MomOp::VminSwVs => MmxOp::PminSw,
            MomOp::VsadBw => MmxOp::PsadBw,
            MomOp::VshufW => MmxOp::PshufW,
            _ => return None,
        })
    }

    /// The element type the operation's lanes are interpreted as.
    #[must_use]
    pub fn elem_type(self) -> ElemType {
        if let Some(m) = self.mmx_equiv() {
            return m.elem_type();
        }
        match self {
            MomOp::AccAddB
            | MomOp::AccSubB
            | MomOp::AccSadB
            | MomOp::RdAccSatB
            | MomOp::RdAccRndB
            | MomOp::VbcastB
            | MomOp::VselB
            | MomOp::VabsdB
            | MomOp::VpcntB
            | MomOp::VclipUb
            | MomOp::VmaxSb
            | MomOp::VminSb => ElemType::I8,
            MomOp::AccAddW
            | MomOp::AccSubW
            | MomOp::AccMacW
            | MomOp::AccMacuW
            | MomOp::RdAccSatW
            | MomOp::RdAccRndW
            | MomOp::AccRedAddW
            | MomOp::AccRedMaxW
            | MomOp::AccRedMinW
            | MomOp::VbcastW
            | MomOp::VselW
            | MomOp::VabsdW
            | MomOp::VsrlRndW
            | MomOp::VsraRndW
            | MomOp::VclipSw
            | MomOp::VclzW
            | MomOp::VmaxUw
            | MomOp::VminUw
            | MomOp::VscaleW => ElemType::I16,
            MomOp::AccMaddWd
            | MomOp::AccRedAddD
            | MomOp::VbcastD
            | MomOp::VselD
            | MomOp::VsrlRndD
            | MomOp::VsraRndD
            | MomOp::VscaleD => ElemType::I32,
            _ => ElemType::Q64,
        }
    }

    /// Per-element-group access size in bytes for memory opcodes (0
    /// otherwise).
    #[must_use]
    pub const fn mem_size(self) -> u8 {
        match self {
            MomOp::VloadQ | MomOp::VstoreQ | MomOp::VloadStride | MomOp::VstoreStride => 8,
            MomOp::VloadD | MomOp::VstoreD => 4,
            MomOp::Vprefetch => 32,
            _ => 0,
        }
    }

    /// Mnemonic used by the disassembler.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            MomOp::VaddB => "vadd.b",
            MomOp::VaddW => "vadd.w",
            MomOp::VaddD => "vadd.d",
            MomOp::VsubB => "vsub.b",
            MomOp::VsubW => "vsub.w",
            MomOp::VsubD => "vsub.d",
            MomOp::VaddsB => "vadds.b",
            MomOp::VaddsW => "vadds.w",
            MomOp::VaddusB => "vaddus.b",
            MomOp::VaddusW => "vaddus.w",
            MomOp::VsubsB => "vsubs.b",
            MomOp::VsubsW => "vsubs.w",
            MomOp::VsubusB => "vsubus.b",
            MomOp::VsubusW => "vsubus.w",
            MomOp::VmullW => "vmull.w",
            MomOp::VmulhW => "vmulh.w",
            MomOp::VmulhuW => "vmulhu.w",
            MomOp::VmaddWd => "vmadd.wd",
            MomOp::VcmpeqB => "vcmpeq.b",
            MomOp::VcmpeqW => "vcmpeq.w",
            MomOp::VcmpeqD => "vcmpeq.d",
            MomOp::VcmpgtB => "vcmpgt.b",
            MomOp::VcmpgtW => "vcmpgt.w",
            MomOp::VcmpgtD => "vcmpgt.d",
            MomOp::Vand => "vand",
            MomOp::Vandn => "vandn",
            MomOp::Vor => "vor",
            MomOp::Vxor => "vxor",
            MomOp::VsllW => "vsll.w",
            MomOp::VsllD => "vsll.d",
            MomOp::VsllQ => "vsll.q",
            MomOp::VsrlW => "vsrl.w",
            MomOp::VsrlD => "vsrl.d",
            MomOp::VsrlQ => "vsrl.q",
            MomOp::VsraW => "vsra.w",
            MomOp::VsraD => "vsra.d",
            MomOp::VpackssWb => "vpackss.wb",
            MomOp::VpackssDw => "vpackss.dw",
            MomOp::VpackusWb => "vpackus.wb",
            MomOp::VpunpcklBw => "vpunpckl.bw",
            MomOp::VpunpcklWd => "vpunpckl.wd",
            MomOp::VpunpcklDq => "vpunpckl.dq",
            MomOp::VpunpckhBw => "vpunpckh.bw",
            MomOp::VpunpckhWd => "vpunpckh.wd",
            MomOp::VpunpckhDq => "vpunpckh.dq",
            MomOp::VavgB => "vavg.b",
            MomOp::VavgW => "vavg.w",
            MomOp::VmaxUb => "vmax.ub",
            MomOp::VmaxSw => "vmax.sw",
            MomOp::VminUb => "vmin.ub",
            MomOp::VminSw => "vmin.sw",
            MomOp::VsadBw => "vsad.bw",
            MomOp::VaddBVs => "vadd.b.vs",
            MomOp::VaddWVs => "vadd.w.vs",
            MomOp::VaddDVs => "vadd.d.vs",
            MomOp::VsubBVs => "vsub.b.vs",
            MomOp::VsubWVs => "vsub.w.vs",
            MomOp::VsubDVs => "vsub.d.vs",
            MomOp::VmullWVs => "vmull.w.vs",
            MomOp::VmulhWVs => "vmulh.w.vs",
            MomOp::VmaddWdVs => "vmadd.wd.vs",
            MomOp::VmaxSwVs => "vmax.sw.vs",
            MomOp::VminSwVs => "vmin.sw.vs",
            MomOp::VmaxUbVs => "vmax.ub.vs",
            MomOp::VminUbVs => "vmin.ub.vs",
            MomOp::VandVs => "vand.vs",
            MomOp::VorVs => "vor.vs",
            MomOp::VxorVs => "vxor.vs",
            MomOp::AccAddB => "acc.add.b",
            MomOp::AccAddW => "acc.add.w",
            MomOp::AccSubB => "acc.sub.b",
            MomOp::AccSubW => "acc.sub.w",
            MomOp::AccMacW => "acc.mac.w",
            MomOp::AccMacuW => "acc.macu.w",
            MomOp::AccMaddWd => "acc.madd.wd",
            MomOp::AccSadB => "acc.sad.b",
            MomOp::RdAccSatB => "rdacc.sat.b",
            MomOp::RdAccSatW => "rdacc.sat.w",
            MomOp::RdAccRndB => "rdacc.rnd.b",
            MomOp::RdAccRndW => "rdacc.rnd.w",
            MomOp::AccRedAddW => "acc.redadd.w",
            MomOp::AccRedAddD => "acc.redadd.d",
            MomOp::AccRedMaxW => "acc.redmax.w",
            MomOp::AccRedMinW => "acc.redmin.w",
            MomOp::AccClear => "acc.clear",
            MomOp::VloadQ => "vld.q",
            MomOp::VstoreQ => "vst.q",
            MomOp::VloadStride => "vlds.q",
            MomOp::VstoreStride => "vsts.q",
            MomOp::VloadD => "vld.d",
            MomOp::VstoreD => "vst.d",
            MomOp::Vmov => "vmov",
            MomOp::VinsQ => "vins.q",
            MomOp::VextQ => "vext.q",
            MomOp::VbcastB => "vbcast.b",
            MomOp::VbcastW => "vbcast.w",
            MomOp::VbcastD => "vbcast.d",
            MomOp::SetVl => "setvl",
            MomOp::Vzero => "vzero",
            MomOp::VshufW => "vshuf.w",
            MomOp::VselB => "vsel.b",
            MomOp::VselW => "vsel.w",
            MomOp::VselD => "vsel.d",
            MomOp::VabsdB => "vabsd.b",
            MomOp::VabsdW => "vabsd.w",
            MomOp::VsrlRndW => "vsrlrnd.w",
            MomOp::VsrlRndD => "vsrlrnd.d",
            MomOp::VsraRndW => "vsrarnd.w",
            MomOp::VsraRndD => "vsrarnd.d",
            MomOp::VclipSw => "vclip.sw",
            MomOp::VclipUb => "vclip.ub",
            MomOp::VclzW => "vclz.w",
            MomOp::VpcntB => "vpcnt.b",
            MomOp::VmaxUw => "vmax.uw",
            MomOp::VmaxSb => "vmax.sb",
            MomOp::VminUw => "vmin.uw",
            MomOp::VminSb => "vmin.sb",
            MomOp::VscaleW => "vscale.w",
            MomOp::VscaleD => "vscale.d",
            MomOp::Vprefetch => "vpref",
            MomOp::Vtrans => "vtrans",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn exactly_121_opcodes_per_paper() {
        assert_eq!(MomOp::COUNT, 121);
        let set: HashSet<_> = MomOp::ALL.iter().collect();
        assert_eq!(set.len(), 121, "duplicate opcode in ALL");
    }

    #[test]
    fn mnemonics_unique() {
        let set: HashSet<_> = MomOp::ALL.iter().map(|o| o.mnemonic()).collect();
        assert_eq!(set.len(), 121);
    }

    #[test]
    fn memory_classification() {
        assert!(MomOp::VloadQ.is_mem());
        assert!(MomOp::VstoreStride.is_mem());
        assert!(MomOp::VstoreStride.is_store());
        assert!(MomOp::VstoreStride.is_strided());
        assert!(!MomOp::VloadQ.is_strided());
        assert!(!MomOp::VaddB.is_mem());
        assert_eq!(MomOp::VloadQ.mem_size(), 8);
        assert_eq!(MomOp::VloadD.mem_size(), 4);
    }

    #[test]
    fn accumulator_classification() {
        assert!(MomOp::AccMacW.writes_acc());
        assert!(MomOp::AccMacW.uses_acc());
        assert!(!MomOp::AccMacW.reads_acc());
        assert!(MomOp::RdAccSatW.reads_acc());
        assert!(MomOp::AccRedAddW.reads_acc());
        assert!(MomOp::AccClear.writes_acc());
        assert!(!MomOp::VaddB.uses_acc());
        let acc_ops = MomOp::ALL.iter().filter(|o| o.uses_acc()).count();
        assert_eq!(acc_ops, 17);
    }

    #[test]
    fn vector_scalar_forms() {
        let vs = MomOp::ALL.iter().filter(|o| o.is_vector_scalar()).count();
        assert_eq!(vs, 16);
        assert!(MomOp::VmaddWdVs.is_vector_scalar());
        assert!(!MomOp::VmaddWd.is_vector_scalar());
    }

    #[test]
    fn mmx_equivalences_cover_the_mirrored_families() {
        // All the vector-vector arithmetic family must map to an MMX op.
        for op in [
            MomOp::VaddB,
            MomOp::VsubusW,
            MomOp::VmaddWd,
            MomOp::VcmpgtD,
            MomOp::Vxor,
            MomOp::VsraW,
            MomOp::VpackssWb,
            MomOp::VavgB,
            MomOp::VsadBw,
        ] {
            assert!(
                op.mmx_equiv().is_some(),
                "{op:?} should have an MMX equivalent"
            );
        }
        // Control/memory/accumulator ops must not.
        for op in [MomOp::VloadQ, MomOp::AccMacW, MomOp::SetVl, MomOp::Vtrans] {
            assert!(
                op.mmx_equiv().is_none(),
                "{op:?} should have no MMX equivalent"
            );
        }
    }

    #[test]
    fn elem_type_consistency_with_mmx_equiv() {
        for op in MomOp::ALL {
            if let Some(m) = op.mmx_equiv() {
                assert_eq!(op.elem_type(), m.elem_type(), "{op:?} vs {m:?}");
            }
        }
    }

    #[test]
    fn multiply_classification() {
        assert!(MomOp::AccMaddWd.is_mul());
        assert!(MomOp::VscaleW.is_mul());
        assert!(!MomOp::VaddB.is_mul());
    }
}
