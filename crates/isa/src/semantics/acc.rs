//! The MDMX-style 192-bit packed accumulator.
//!
//! The paper equips MOM with "2 logical packed accumulators of 192 bits
//! … allow[ing] reduction operations over a whole μ-SIMD stream using a
//! single packed accumulator with high efficiency" (§3).
//!
//! 192 bits partition as **8 × 24-bit** lanes for byte operands or
//! **4 × 48-bit** lanes for word operands. We model the lanes as `i64`
//! and clamp to the 24-/48-bit signed range on every update (saturating
//! accumulation — the media-friendly choice, documented as a modeling
//! decision in DESIGN.md).

use super::lanes::{get_lane, set_lane};
use crate::elem::ElemType;
use serde::{Deserialize, Serialize};

const LANE24_MAX: i64 = (1 << 23) - 1;
const LANE24_MIN: i64 = -(1 << 23);
const LANE48_MAX: i64 = (1 << 47) - 1;
const LANE48_MIN: i64 = -(1 << 47);

fn sat24(v: i64) -> i64 {
    v.clamp(LANE24_MIN, LANE24_MAX)
}

fn sat48(v: i64) -> i64 {
    v.clamp(LANE48_MIN, LANE48_MAX)
}

/// A 192-bit packed accumulator (8 × 24-bit or 4 × 48-bit lanes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Accumulator {
    lanes: [i64; 8],
}

impl Accumulator {
    /// A cleared accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Clear all lanes to zero.
    pub fn clear(&mut self) {
        self.lanes = [0; 8];
    }

    /// Raw lane values (semantic view; byte mode uses all 8, word mode
    /// the first 4).
    #[must_use]
    pub fn lanes(&self) -> [i64; 8] {
        self.lanes
    }

    /// Accumulate the 8 unsigned byte lanes of `v` (24-bit saturating).
    pub fn add_bytes(&mut self, v: u64) {
        for i in 0..8 {
            self.lanes[i] = sat24(self.lanes[i] + get_lane(ElemType::U8, v, i));
        }
    }

    /// Subtract the 8 unsigned byte lanes of `v`.
    pub fn sub_bytes(&mut self, v: u64) {
        for i in 0..8 {
            self.lanes[i] = sat24(self.lanes[i] - get_lane(ElemType::U8, v, i));
        }
    }

    /// Accumulate the 4 signed word lanes of `v` (48-bit saturating).
    pub fn add_words(&mut self, v: u64) {
        for i in 0..4 {
            self.lanes[i] = sat48(self.lanes[i] + get_lane(ElemType::I16, v, i));
        }
    }

    /// Subtract the 4 signed word lanes of `v`.
    pub fn sub_words(&mut self, v: u64) {
        for i in 0..4 {
            self.lanes[i] = sat48(self.lanes[i] - get_lane(ElemType::I16, v, i));
        }
    }

    /// Signed 16×16 multiply-accumulate per word lane.
    pub fn mac_words(&mut self, a: u64, b: u64) {
        for i in 0..4 {
            let p = get_lane(ElemType::I16, a, i) * get_lane(ElemType::I16, b, i);
            self.lanes[i] = sat48(self.lanes[i] + p);
        }
    }

    /// Unsigned 16×16 multiply-accumulate per word lane.
    pub fn macu_words(&mut self, a: u64, b: u64) {
        for i in 0..4 {
            let p = get_lane(ElemType::U16, a, i) * get_lane(ElemType::U16, b, i);
            self.lanes[i] = sat48(self.lanes[i] + p);
        }
    }

    /// Pairwise multiply-add accumulate (`pmaddwd` feeding the
    /// accumulator's two low dword lanes).
    pub fn madd_wd(&mut self, a: u64, b: u64) {
        for d in 0..2 {
            let p0 = get_lane(ElemType::I16, a, 2 * d) * get_lane(ElemType::I16, b, 2 * d);
            let p1 = get_lane(ElemType::I16, a, 2 * d + 1) * get_lane(ElemType::I16, b, 2 * d + 1);
            self.lanes[d] = sat48(self.lanes[d] + p0 + p1);
        }
    }

    /// Sum-of-absolute-differences accumulate into lane 0 (motion
    /// estimation inner loop).
    pub fn sad_bytes(&mut self, a: u64, b: u64) {
        let sad: i64 = (0..8)
            .map(|i| (get_lane(ElemType::U8, a, i) - get_lane(ElemType::U8, b, i)).abs())
            .sum();
        self.lanes[0] = sat48(self.lanes[0] + sad);
    }

    /// Horizontal sum of the 4 word lanes.
    #[must_use]
    pub fn red_add_w(&self) -> i64 {
        self.lanes[..4].iter().sum()
    }

    /// Horizontal sum of the 2 dword lanes.
    #[must_use]
    pub fn red_add_d(&self) -> i64 {
        self.lanes[..2].iter().sum()
    }

    /// Horizontal max of the 4 word lanes.
    #[must_use]
    pub fn red_max_w(&self) -> i64 {
        self.lanes[..4].iter().copied().max().unwrap_or(0)
    }

    /// Horizontal min of the 4 word lanes.
    #[must_use]
    pub fn red_min_w(&self) -> i64 {
        self.lanes[..4].iter().copied().min().unwrap_or(0)
    }

    /// Read back word lanes with signed saturation to 16 bits.
    #[must_use]
    pub fn read_sat_w(&self) -> u64 {
        let mut out = 0u64;
        for i in 0..4 {
            out = set_lane(ElemType::I16, out, i, ElemType::I16.saturate(self.lanes[i]));
        }
        out
    }

    /// Read back byte lanes with unsigned saturation to 8 bits.
    #[must_use]
    pub fn read_sat_b(&self) -> u64 {
        let mut out = 0u64;
        for i in 0..8 {
            out = set_lane(ElemType::U8, out, i, ElemType::U8.saturate(self.lanes[i]));
        }
        out
    }

    /// Read back word lanes with a rounding right shift then saturation.
    #[must_use]
    pub fn read_rnd_w(&self, shift: u8) -> u64 {
        let mut out = 0u64;
        for i in 0..4 {
            let v = round_shift(self.lanes[i], shift);
            out = set_lane(ElemType::I16, out, i, ElemType::I16.saturate(v));
        }
        out
    }

    /// Read back byte lanes with a rounding right shift then saturation.
    #[must_use]
    pub fn read_rnd_b(&self, shift: u8) -> u64 {
        let mut out = 0u64;
        for i in 0..8 {
            let v = round_shift(self.lanes[i], shift);
            out = set_lane(ElemType::U8, out, i, ElemType::U8.saturate(v));
        }
        out
    }
}

fn round_shift(v: i64, shift: u8) -> i64 {
    if shift == 0 {
        v
    } else {
        (v + (1 << (shift - 1))) >> shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::lanes::splat;

    #[test]
    fn byte_accumulation() {
        let mut acc = Accumulator::new();
        for _ in 0..10 {
            acc.add_bytes(splat(ElemType::U8, 200));
        }
        assert_eq!(acc.lanes()[0], 2000);
        assert_eq!(acc.lanes()[7], 2000);
        acc.sub_bytes(splat(ElemType::U8, 100));
        assert_eq!(acc.lanes()[3], 1900);
    }

    #[test]
    fn byte_lane_saturates_at_24_bits() {
        let mut acc = Accumulator::new();
        // 255 × 40000 ≈ 10.2M > 2^23-1 ≈ 8.38M
        for _ in 0..40_000 {
            acc.add_bytes(splat(ElemType::U8, 255));
        }
        assert_eq!(acc.lanes()[0], (1 << 23) - 1);
    }

    #[test]
    fn word_mac_and_reduce() {
        let mut acc = Accumulator::new();
        // words a=[1,2,3,4] b=[10,10,10,10]: lanes = 10,20,30,40
        acc.mac_words(0x0004_0003_0002_0001, splat(ElemType::I16, 10));
        assert_eq!(acc.red_add_w(), 100);
        assert_eq!(acc.red_max_w(), 40);
        assert_eq!(acc.red_min_w(), 10);
    }

    #[test]
    fn signed_mac_can_go_negative() {
        let mut acc = Accumulator::new();
        acc.mac_words(splat(ElemType::I16, -3), splat(ElemType::I16, 5));
        assert_eq!(acc.lanes()[0], -15);
        assert_eq!(acc.red_add_w(), -60);
    }

    #[test]
    fn macu_treats_operands_unsigned() {
        let mut acc = Accumulator::new();
        acc.macu_words(splat(ElemType::I16, -1), splat(ElemType::I16, 1));
        assert_eq!(acc.lanes()[0], 65535);
    }

    #[test]
    fn sad_accumulates_into_lane0() {
        let mut acc = Accumulator::new();
        acc.sad_bytes(splat(ElemType::U8, 9), splat(ElemType::U8, 4));
        acc.sad_bytes(splat(ElemType::U8, 1), splat(ElemType::U8, 3));
        assert_eq!(acc.lanes()[0], 8 * 5 + 8 * 2);
    }

    #[test]
    fn madd_wd_matches_pmadd_then_accumulate() {
        let mut acc = Accumulator::new();
        let a = 0x0004_0003_0002_0001u64;
        let b = 0x0028_001e_0014_000au64;
        acc.madd_wd(a, b);
        acc.madd_wd(a, b);
        assert_eq!(acc.lanes()[0], 100); // 2 × (1*10+2*20)
        assert_eq!(acc.lanes()[1], 500); // 2 × (3*30+4*40)
        assert_eq!(acc.red_add_d(), 600);
    }

    #[test]
    fn read_back_saturation() {
        let mut acc = Accumulator::new();
        for _ in 0..100 {
            acc.add_words(splat(ElemType::I16, 1000));
        }
        // lanes now 100_000 > i16::MAX
        assert_eq!(acc.read_sat_w() & 0xffff, 0x7fff);
        // rounding shift by 8: 100000/256 ≈ 391 fits
        assert_eq!(acc.read_rnd_w(8) & 0xffff, 391);
    }

    #[test]
    fn read_rnd_rounds_to_nearest() {
        let mut acc = Accumulator::new();
        acc.add_words(splat(ElemType::I16, 3));
        assert_eq!(acc.read_rnd_w(1) & 0xffff, 2); // (3+1)>>1
        assert_eq!(acc.read_rnd_b(0) & 0xff, 3); // shift 0 is the identity
    }

    #[test]
    fn clear_resets() {
        let mut acc = Accumulator::new();
        acc.add_bytes(splat(ElemType::U8, 7));
        acc.clear();
        assert_eq!(acc.lanes(), [0; 8]);
    }
}
