//! Lane-level helpers for 64-bit packed values.
//!
//! All packed operations are expressed as maps over lanes. A lane value
//! travels as `i64` (sign- or zero-extended according to the element
//! type); writeback truncates to the lane width, so wrapping arithmetic
//! falls out naturally and saturating arithmetic clamps explicitly.

use crate::elem::ElemType;

/// Extract lane `i` of `v` as an `i64` according to `et`'s width and
/// signedness.
///
/// # Panics
///
/// Panics (debug) if `i >= et.lanes()`.
#[must_use]
pub fn get_lane(et: ElemType, v: u64, i: usize) -> i64 {
    debug_assert!(i < et.lanes());
    let bits = et.bits();
    let shift = (i as u32) * bits;
    let mask = if bits == 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    let raw = (v >> shift) & mask;
    if et.is_signed() || et == ElemType::Q64 {
        // sign extend
        let sbit = 1u64 << (bits - 1);
        if raw & sbit != 0 {
            (raw | !mask) as i64
        } else {
            raw as i64
        }
    } else {
        raw as i64
    }
}

/// Insert `val` (truncated to the lane width) as lane `i` of `v`.
#[must_use]
pub fn set_lane(et: ElemType, v: u64, i: usize, val: i64) -> u64 {
    debug_assert!(i < et.lanes());
    let bits = et.bits();
    let shift = (i as u32) * bits;
    let mask = if bits == 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    (v & !(mask << shift)) | (((val as u64) & mask) << shift)
}

/// Apply `f` to every lane of `a`.
#[must_use]
pub fn map1(et: ElemType, a: u64, mut f: impl FnMut(i64) -> i64) -> u64 {
    let mut out = 0u64;
    for i in 0..et.lanes() {
        out = set_lane(et, out, i, f(get_lane(et, a, i)));
    }
    out
}

/// Apply `f` lane-wise to `a` and `b`.
#[must_use]
pub fn map2(et: ElemType, a: u64, b: u64, mut f: impl FnMut(i64, i64) -> i64) -> u64 {
    let mut out = 0u64;
    for i in 0..et.lanes() {
        out = set_lane(et, out, i, f(get_lane(et, a, i), get_lane(et, b, i)));
    }
    out
}

/// Horizontal fold over the lanes of `a`.
#[must_use]
pub fn fold(et: ElemType, a: u64, init: i64, mut f: impl FnMut(i64, i64) -> i64) -> i64 {
    let mut accum = init;
    for i in 0..et.lanes() {
        accum = f(accum, get_lane(et, a, i));
    }
    accum
}

/// Broadcast a scalar into every lane.
#[must_use]
pub fn splat(et: ElemType, val: i64) -> u64 {
    map1(et, 0, |_| val)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_round_trip() {
        let v = 0x8899_aabb_ccdd_eeffu64;
        for et in [
            ElemType::U8,
            ElemType::I8,
            ElemType::U16,
            ElemType::I16,
            ElemType::U32,
            ElemType::I32,
        ] {
            let mut rebuilt = 0u64;
            for i in 0..et.lanes() {
                rebuilt = set_lane(et, rebuilt, i, get_lane(et, v, i));
            }
            assert_eq!(rebuilt, v, "{et}");
        }
    }

    #[test]
    fn signed_extraction() {
        // 0xFF as i8 lane = -1; as u8 lane = 255.
        assert_eq!(get_lane(ElemType::I8, 0xff, 0), -1);
        assert_eq!(get_lane(ElemType::U8, 0xff, 0), 255);
        assert_eq!(get_lane(ElemType::I16, 0x8000, 0), -32768);
        assert_eq!(get_lane(ElemType::U16, 0x8000, 0), 0x8000);
        assert_eq!(get_lane(ElemType::I32, 0xffff_ffff, 0), -1);
    }

    #[test]
    fn q64_lane() {
        assert_eq!(get_lane(ElemType::Q64, u64::MAX, 0), -1);
        assert_eq!(set_lane(ElemType::Q64, 0, 0, -2), u64::MAX - 1);
    }

    #[test]
    fn map2_wrapping_add_bytes() {
        let a = splat(ElemType::U8, 200);
        let b = splat(ElemType::U8, 100);
        let r = map2(ElemType::U8, a, b, |x, y| x + y); // 300 truncates to 44
        assert_eq!(r, splat(ElemType::U8, 44));
    }

    #[test]
    fn fold_sums_lanes() {
        let v = 0x0004_0003_0002_0001u64; // words 1,2,3,4
        assert_eq!(fold(ElemType::I16, v, 0, |a, b| a + b), 10);
    }

    #[test]
    fn splat_patterns() {
        assert_eq!(splat(ElemType::U8, 0xab), 0xabab_abab_abab_abab);
        assert_eq!(splat(ElemType::U16, 0x1234), 0x1234_1234_1234_1234);
    }
}
