//! Executable functional semantics for the packed and streaming ISAs.
//!
//! The workload models in `medsim-workloads` run the *real* media
//! kernels (DCT, SAD motion search, color conversion, …) through these
//! semantics, so the instruction streams fed to the timing model carry
//! genuine data-dependent behaviour, and the semantics themselves are
//! testable against scalar reference implementations.
//!
//! Three layers:
//!
//! * [`lanes`] — lane extraction/insertion helpers over 64-bit packed
//!   registers;
//! * [`exec_mmx`] / [`exec_mmx_rr`] — one MMX operation on 64-bit values;
//! * [`StreamValue`] + [`exec_mom_vv`]/[`exec_mom_vs`] and
//!   [`Accumulator`] — MOM stream operations defined (where possible) as
//!   the per-group application of their MMX equivalent.

pub mod acc;
pub mod lanes;
mod mmx_exec;
mod mom_exec;

pub use acc::Accumulator;
pub use mmx_exec::{exec_mmx, exec_mmx_rr};
pub use mom_exec::{exec_acc_stream, exec_mom_vs, exec_mom_vv, StreamValue};
