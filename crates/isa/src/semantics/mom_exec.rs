//! Functional execution of MOM stream opcodes.
//!
//! A stream operation applies an MMX-like operation over up to 16
//! consecutive 64-bit element groups. Where a MOM opcode has a direct
//! MMX equivalent (see [`MomOp::mmx_equiv`]) the stream semantics are the
//! per-group application of that equivalent — which is also exactly how
//! the paper counts "equivalent instructions" for the EIPC metric.

use super::acc::Accumulator;
use super::lanes::{get_lane, map1, map2, set_lane, splat};
use super::mmx_exec::exec_mmx;
use crate::elem::ElemType;
use crate::mom::MomOp;
use crate::STREAM_REG_GROUPS;
use serde::{Deserialize, Serialize};

/// The value of a MOM stream register: 16 MMX-like 64-bit element groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamValue {
    groups: [u64; STREAM_REG_GROUPS],
}

impl Default for StreamValue {
    fn default() -> Self {
        StreamValue {
            groups: [0; STREAM_REG_GROUPS],
        }
    }
}

impl StreamValue {
    /// All-zero stream value.
    #[must_use]
    pub fn zero() -> Self {
        Self::default()
    }

    /// Build from a function over group indices.
    #[must_use]
    pub fn from_fn(f: impl FnMut(usize) -> u64) -> Self {
        let mut f = f;
        let mut groups = [0u64; STREAM_REG_GROUPS];
        for (i, g) in groups.iter_mut().enumerate() {
            *g = f(i);
        }
        StreamValue { groups }
    }

    /// Build from a slice of at most 16 groups (rest zero).
    ///
    /// # Panics
    ///
    /// Panics if `s.len() > 16`.
    #[must_use]
    pub fn from_slice(s: &[u64]) -> Self {
        assert!(
            s.len() <= STREAM_REG_GROUPS,
            "stream value larger than a register"
        );
        let mut groups = [0u64; STREAM_REG_GROUPS];
        groups[..s.len()].copy_from_slice(s);
        StreamValue { groups }
    }

    /// Value of element group `i`.
    #[must_use]
    pub fn group(&self, i: usize) -> u64 {
        self.groups[i]
    }

    /// Set element group `i`.
    pub fn set_group(&mut self, i: usize, v: u64) {
        self.groups[i] = v;
    }

    /// View of all 16 groups.
    #[must_use]
    pub fn groups(&self) -> &[u64; STREAM_REG_GROUPS] {
        &self.groups
    }
}

/// Execute a vector-vector (or vector-vector-vector, for selects) MOM
/// operation over the first `slen` groups; remaining groups of the
/// result are zero.
///
/// `c` supplies the mask for the `Vsel*` family and is ignored
/// elsewhere. `imm` carries shift counts / shuffle controls / clip
/// ranges, as for MMX.
///
/// # Panics
///
/// Panics for memory opcodes, accumulator opcodes (use
/// [`exec_acc_stream`]) and `SetVl` (a scalar-side-effect instruction),
/// or if `slen` is out of range.
#[must_use]
pub fn exec_mom_vvv(
    op: MomOp,
    a: &StreamValue,
    b: &StreamValue,
    c: &StreamValue,
    slen: u8,
    imm: u8,
) -> StreamValue {
    assert!(
        slen >= 1 && slen <= STREAM_REG_GROUPS as u8,
        "stream length out of range"
    );
    assert!(!op.is_mem(), "memory opcode {op:?} has no ALU semantics");
    assert!(
        !op.uses_acc(),
        "accumulator opcode {op:?}: use exec_acc_stream"
    );
    assert!(op != MomOp::SetVl, "setvl has scalar semantics only");

    let n = slen as usize;
    if let Some(m) = op.mmx_equiv() {
        return StreamValue::from_fn(|i| {
            if i < n {
                exec_mmx(m, a.group(i), b.group(i), imm)
            } else {
                0
            }
        });
    }

    use ElemType as E;
    let per_group = |i: usize| -> u64 {
        let (ga, gb, gc) = (a.group(i), b.group(i), c.group(i));
        match op {
            MomOp::Vmov => ga,
            MomOp::Vzero => 0,
            MomOp::VselB => sel(E::I8, ga, gb, gc),
            MomOp::VselW => sel(E::I16, ga, gb, gc),
            MomOp::VselD => sel(E::I32, ga, gb, gc),
            MomOp::VabsdB => map2(E::U8, ga, gb, |x, y| (x - y).abs()),
            MomOp::VabsdW => map2(E::I16, ga, gb, |x, y| (x - y).abs()),
            MomOp::VsrlRndW => map1(E::U16, ga, |x| round_shift(x, imm)),
            MomOp::VsrlRndD => map1(E::U32, ga, |x| round_shift(x, imm)),
            MomOp::VsraRndW => map1(E::I16, ga, |x| round_shift(x, imm)),
            MomOp::VsraRndD => map1(E::I32, ga, |x| round_shift(x, imm)),
            MomOp::VclipSw => {
                let bound = (1i64 << imm.min(14)) - 1;
                map1(E::I16, ga, |x| x.clamp(-bound - 1, bound))
            }
            MomOp::VclipUb => map1(E::I16, ga, |x| x.clamp(0, 255)),
            MomOp::VclzW => map1(E::U16, ga, |x| i64::from((x as u16).leading_zeros())),
            MomOp::VpcntB => map1(E::U8, ga, |x| i64::from((x as u8).count_ones())),
            MomOp::VmaxUw => map2(E::U16, ga, gb, i64::max),
            MomOp::VmaxSb => map2(E::I8, ga, gb, i64::max),
            MomOp::VminUw => map2(E::U16, ga, gb, i64::min),
            MomOp::VminSb => map2(E::I8, ga, gb, i64::min),
            MomOp::VscaleW => map2(E::I16, ga, gb, |x, y| E::I16.saturate((x * y) >> imm)),
            MomOp::VscaleD => map2(E::I32, ga, gb, |x, y| E::I32.saturate((x * y) >> imm)),
            // VinsQ/VextQ/broadcast/transpose handled outside the per-group map
            _ => 0,
        }
    };

    match op {
        MomOp::VinsQ => {
            let mut out = *a;
            out.set_group((imm as usize) % STREAM_REG_GROUPS, b.group(0));
            out
        }
        MomOp::VextQ => {
            let mut out = StreamValue::zero();
            out.set_group(0, a.group((imm as usize) % STREAM_REG_GROUPS));
            out
        }
        MomOp::VbcastB => StreamValue::from_fn(|i| {
            if i < n {
                splat(E::U8, get_lane(E::U8, b.group(0), 0))
            } else {
                0
            }
        }),
        MomOp::VbcastW => StreamValue::from_fn(|i| {
            if i < n {
                splat(E::U16, get_lane(E::U16, b.group(0), 0))
            } else {
                0
            }
        }),
        MomOp::VbcastD => StreamValue::from_fn(|i| {
            if i < n {
                splat(E::U32, get_lane(E::U32, b.group(0), 0))
            } else {
                0
            }
        }),
        MomOp::Vtrans => transpose(a, n),
        _ => StreamValue::from_fn(|i| if i < n { per_group(i) } else { 0 }),
    }
}

/// Execute a two-source MOM operation (mask source zero).
#[must_use]
pub fn exec_mom_vv(op: MomOp, a: &StreamValue, b: &StreamValue, slen: u8, imm: u8) -> StreamValue {
    exec_mom_vvv(op, a, b, &StreamValue::zero(), slen, imm)
}

/// Execute a vector-scalar MOM operation: the 64-bit `scalar` (an MMX
/// register value) is used as the second operand of every group.
#[must_use]
pub fn exec_mom_vs(op: MomOp, a: &StreamValue, scalar: u64, slen: u8, imm: u8) -> StreamValue {
    let b = StreamValue::from_fn(|_| scalar);
    exec_mom_vvv(op, a, &b, &StreamValue::zero(), slen, imm)
}

/// Execute an accumulator MOM operation over the first `slen` groups of
/// the sources.
///
/// # Panics
///
/// Panics if `op` is not an accumulator opcode.
pub fn exec_acc_stream(
    op: MomOp,
    acc: &mut Accumulator,
    a: &StreamValue,
    b: &StreamValue,
    slen: u8,
) {
    assert!(op.writes_acc(), "{op:?} does not accumulate");
    let n = slen as usize;
    match op {
        MomOp::AccClear => acc.clear(),
        MomOp::AccAddB => (0..n).for_each(|i| acc.add_bytes(a.group(i))),
        MomOp::AccAddW => (0..n).for_each(|i| acc.add_words(a.group(i))),
        MomOp::AccSubB => (0..n).for_each(|i| acc.sub_bytes(a.group(i))),
        MomOp::AccSubW => (0..n).for_each(|i| acc.sub_words(a.group(i))),
        MomOp::AccMacW => (0..n).for_each(|i| acc.mac_words(a.group(i), b.group(i))),
        MomOp::AccMacuW => (0..n).for_each(|i| acc.macu_words(a.group(i), b.group(i))),
        MomOp::AccMaddWd => (0..n).for_each(|i| acc.madd_wd(a.group(i), b.group(i))),
        MomOp::AccSadB => (0..n).for_each(|i| acc.sad_bytes(a.group(i), b.group(i))),
        _ => unreachable!("writes_acc() covered all cases"),
    }
}

fn sel(et: ElemType, a: u64, b: u64, mask: u64) -> u64 {
    let mut out = 0u64;
    for i in 0..et.lanes() {
        let pick_a = get_lane(et.as_signed(), mask, i) < 0;
        let v = if pick_a {
            get_lane(et, a, i)
        } else {
            get_lane(et, b, i)
        };
        out = set_lane(et, out, i, v);
    }
    out
}

fn round_shift(v: i64, shift: u8) -> i64 {
    if shift == 0 {
        v
    } else {
        (v + (1 << (shift - 1))) >> shift
    }
}

/// Transpose 4×4 word tiles: within each block of four groups, word lane
/// `l` of group `g` moves to word lane `g` of group `l`.
fn transpose(a: &StreamValue, n: usize) -> StreamValue {
    let mut out = StreamValue::zero();
    let blocks = n / 4;
    for blk in 0..blocks {
        for g in 0..4 {
            for l in 0..4 {
                let v = get_lane(ElemType::U16, a.group(blk * 4 + g), l);
                let cur = out.group(blk * 4 + l);
                out.set_group(blk * 4 + l, set_lane(ElemType::U16, cur, g, v));
            }
        }
    }
    // Groups beyond the last full block pass through untouched.
    for g in blocks * 4..n {
        out.set_group(g, a.group(g));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmx::MmxOp;
    use crate::semantics::exec_mmx_rr;

    #[test]
    fn vv_matches_per_group_mmx() {
        let a = StreamValue::from_fn(|i| (i as u64) * 0x0101_0101_0101_0101);
        let b = StreamValue::from_fn(|_| 0x0202_0202_0202_0202);
        let r = exec_mom_vv(MomOp::VaddusB, &a, &b, 16, 0);
        for i in 0..16 {
            assert_eq!(
                r.group(i),
                exec_mmx_rr(MmxOp::PaddusB, a.group(i), b.group(i)),
                "group {i}"
            );
        }
    }

    #[test]
    fn groups_beyond_slen_are_zero() {
        let a = StreamValue::from_fn(|_| 0x1111_1111_1111_1111);
        let r = exec_mom_vv(MomOp::VaddB, &a, &a, 5, 0);
        for i in 0..5 {
            assert_ne!(r.group(i), 0);
        }
        for i in 5..16 {
            assert_eq!(r.group(i), 0, "group {i} must be zero past slen");
        }
    }

    #[test]
    fn vector_scalar_broadcasts() {
        let a = StreamValue::from_fn(|_| splat(ElemType::I16, 10));
        let r = exec_mom_vs(MomOp::VmullWVs, &a, splat(ElemType::I16, 3), 4, 0);
        assert_eq!(r.group(0), splat(ElemType::I16, 30));
        assert_eq!(r.group(3), splat(ElemType::I16, 30));
    }

    #[test]
    fn select_picks_by_mask_sign() {
        let a = StreamValue::from_fn(|_| splat(ElemType::U8, 1));
        let b = StreamValue::from_fn(|_| splat(ElemType::U8, 2));
        let mask = StreamValue::from_fn(|_| 0x0000_0000_ffff_ffff); // low 4 bytes negative
        let r = exec_mom_vvv(MomOp::VselB, &a, &b, &mask, 1, 0);
        assert_eq!(r.group(0) & 0xff, 1);
        assert_eq!((r.group(0) >> 56) & 0xff, 2);
    }

    #[test]
    fn accumulate_sad_over_stream() {
        let mut acc = Accumulator::new();
        let a = StreamValue::from_fn(|_| splat(ElemType::U8, 10));
        let b = StreamValue::from_fn(|_| splat(ElemType::U8, 7));
        exec_acc_stream(MomOp::AccSadB, &mut acc, &a, &b, 16);
        // 16 groups × 8 lanes × |10−7|
        assert_eq!(acc.lanes()[0], 16 * 8 * 3);
    }

    #[test]
    fn acc_mac_dot_product() {
        let mut acc = Accumulator::new();
        let a = StreamValue::from_fn(|_| splat(ElemType::I16, 2));
        let b = StreamValue::from_fn(|_| splat(ElemType::I16, 3));
        exec_acc_stream(MomOp::AccMacW, &mut acc, &a, &b, 8);
        // per lane: 8 groups × 2×3 = 48; 4 lanes → 192
        assert_eq!(acc.red_add_w(), 192);
    }

    #[test]
    fn insert_extract_round_trip() {
        let a = StreamValue::from_fn(|i| i as u64);
        let scalar = StreamValue::from_slice(&[0xdead_beef]);
        let ins = exec_mom_vvv(MomOp::VinsQ, &a, &scalar, &StreamValue::zero(), 16, 7);
        assert_eq!(ins.group(7), 0xdead_beef);
        assert_eq!(ins.group(6), 6);
        let ext = exec_mom_vvv(
            MomOp::VextQ,
            &ins,
            &StreamValue::zero(),
            &StreamValue::zero(),
            16,
            7,
        );
        assert_eq!(ext.group(0), 0xdead_beef);
    }

    #[test]
    fn broadcast_splats_scalar() {
        let b = StreamValue::from_slice(&[0xab]);
        let r = exec_mom_vvv(
            MomOp::VbcastB,
            &StreamValue::zero(),
            &b,
            &StreamValue::zero(),
            3,
            0,
        );
        assert_eq!(r.group(0), 0xabab_abab_abab_abab);
        assert_eq!(r.group(2), 0xabab_abab_abab_abab);
        assert_eq!(r.group(3), 0);
    }

    #[test]
    fn transpose_4x4_words() {
        // group g has words [4g, 4g+1, 4g+2, 4g+3]
        let a = StreamValue::from_fn(|g| {
            let mut v = 0u64;
            for l in 0..4 {
                v = set_lane(ElemType::U16, v, l, (4 * g + l) as i64);
            }
            v
        });
        let t = exec_mom_vv(MomOp::Vtrans, &a, &StreamValue::zero(), 4, 0);
        // transposed: group l word g = original group g word l = 4g + l
        for l in 0..4 {
            for g in 0..4 {
                assert_eq!(get_lane(ElemType::U16, t.group(l), g), (4 * g + l) as i64);
            }
        }
    }

    #[test]
    fn rounding_shift_behaviour() {
        let a = StreamValue::from_slice(&[splat(ElemType::I16, 5)]);
        let r = exec_mom_vv(MomOp::VsraRndW, &a, &StreamValue::zero(), 1, 1);
        assert_eq!(r.group(0), splat(ElemType::I16, 3)); // (5+1)>>1
    }

    #[test]
    fn clip_bounds() {
        let a = StreamValue::from_slice(&[splat(ElemType::I16, 300)]);
        let r = exec_mom_vv(MomOp::VclipUb, &a, &StreamValue::zero(), 1, 0);
        assert_eq!(r.group(0), splat(ElemType::I16, 255));
        let n = StreamValue::from_slice(&[splat(ElemType::I16, -300)]);
        let r = exec_mom_vv(MomOp::VclipUb, &n, &StreamValue::zero(), 1, 0);
        assert_eq!(r.group(0), 0);
    }

    #[test]
    #[should_panic(expected = "use exec_acc_stream")]
    fn acc_ops_rejected_in_vv() {
        let z = StreamValue::zero();
        let _ = exec_mom_vv(MomOp::AccMacW, &z, &z, 4, 0);
    }

    #[test]
    #[should_panic(expected = "no ALU semantics")]
    fn mem_ops_rejected_in_vv() {
        let z = StreamValue::zero();
        let _ = exec_mom_vv(MomOp::VloadQ, &z, &z, 4, 0);
    }
}
