//! Functional execution of MMX opcodes on 64-bit packed values.

use super::lanes::{fold, get_lane, map2, set_lane};
use crate::elem::ElemType;
use crate::mmx::MmxOp;

/// Execute a non-memory MMX operation.
///
/// * `a` — first source register value;
/// * `b` — second source value (register, or the integer-register value
///   for insert/move-from-int forms);
/// * `imm` — immediate operand: shift counts, shuffle controls, lane
///   indices for insert/extract.
///
/// Returns the 64-bit result. For ops whose architectural result is a
/// scalar (reductions, `pmovmskb`, `pextrw`) the scalar is returned in
/// the low bits with the rest zeroed.
///
/// # Panics
///
/// Panics if called with a memory opcode (loads/stores have no ALU
/// semantics; the memory system provides their data).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn exec_mmx(op: MmxOp, a: u64, b: u64, imm: u8) -> u64 {
    assert!(!op.is_mem(), "memory opcode {op:?} has no ALU semantics");
    use ElemType as E;
    match op {
        // wrapping add/sub
        MmxOp::PaddB => map2(E::U8, a, b, |x, y| x + y),
        MmxOp::PaddW => map2(E::U16, a, b, |x, y| x + y),
        MmxOp::PaddD => map2(E::U32, a, b, |x, y| x + y),
        MmxOp::PsubB => map2(E::U8, a, b, |x, y| x - y),
        MmxOp::PsubW => map2(E::U16, a, b, |x, y| x - y),
        MmxOp::PsubD => map2(E::U32, a, b, |x, y| x - y),
        // saturating add/sub
        MmxOp::PaddsB => map2(E::I8, a, b, |x, y| E::I8.saturate(x + y)),
        MmxOp::PaddsW => map2(E::I16, a, b, |x, y| E::I16.saturate(x + y)),
        MmxOp::PaddusB => map2(E::U8, a, b, |x, y| E::U8.saturate(x + y)),
        MmxOp::PaddusW => map2(E::U16, a, b, |x, y| E::U16.saturate(x + y)),
        MmxOp::PsubsB => map2(E::I8, a, b, |x, y| E::I8.saturate(x - y)),
        MmxOp::PsubsW => map2(E::I16, a, b, |x, y| E::I16.saturate(x - y)),
        MmxOp::PsubusB => map2(E::U8, a, b, |x, y| E::U8.saturate(x - y)),
        MmxOp::PsubusW => map2(E::U16, a, b, |x, y| E::U16.saturate(x - y)),
        // multiplies
        MmxOp::PmullW => map2(E::I16, a, b, |x, y| x * y),
        MmxOp::PmulhW => map2(E::I16, a, b, |x, y| (x * y) >> 16),
        MmxOp::PmulhuW => map2(E::U16, a, b, |x, y| (x * y) >> 16),
        MmxOp::PmaddWd => {
            let mut out = 0u64;
            for d in 0..2 {
                let p0 = get_lane(E::I16, a, 2 * d) * get_lane(E::I16, b, 2 * d);
                let p1 = get_lane(E::I16, a, 2 * d + 1) * get_lane(E::I16, b, 2 * d + 1);
                out = set_lane(E::I32, out, d, p0 + p1);
            }
            out
        }
        // compares (all-ones on true)
        MmxOp::PcmpeqB => map2(E::U8, a, b, |x, y| if x == y { -1 } else { 0 }),
        MmxOp::PcmpeqW => map2(E::U16, a, b, |x, y| if x == y { -1 } else { 0 }),
        MmxOp::PcmpeqD => map2(E::U32, a, b, |x, y| if x == y { -1 } else { 0 }),
        MmxOp::PcmpgtB => map2(E::I8, a, b, |x, y| if x > y { -1 } else { 0 }),
        MmxOp::PcmpgtW => map2(E::I16, a, b, |x, y| if x > y { -1 } else { 0 }),
        MmxOp::PcmpgtD => map2(E::I32, a, b, |x, y| if x > y { -1 } else { 0 }),
        // logicals
        MmxOp::Pand => a & b,
        MmxOp::Pandn => !a & b,
        MmxOp::Por => a | b,
        MmxOp::Pxor => a ^ b,
        // shifts by immediate count
        MmxOp::PsllW => shift(E::U16, a, imm, |x, s| x << s),
        MmxOp::PsllD => shift(E::U32, a, imm, |x, s| x << s),
        MmxOp::PsllQ => {
            if imm >= 64 {
                0
            } else {
                a << imm
            }
        }
        MmxOp::PsrlW => shift(E::U16, a, imm, |x, s| ((x as u64) >> s) as i64),
        MmxOp::PsrlD => shift(E::U32, a, imm, |x, s| ((x as u64) >> s) as i64),
        MmxOp::PsrlQ => {
            if imm >= 64 {
                0
            } else {
                a >> imm
            }
        }
        MmxOp::PsraW => shift(E::I16, a, imm, |x, s| x >> s),
        MmxOp::PsraD => shift(E::I32, a, imm, |x, s| x >> s),
        // pack: a's lanes in the low half of the result, b's in the high half
        MmxOp::PackssWb => pack(E::I16, E::I8, a, b, |v| E::I8.saturate(v)),
        MmxOp::PackssDw => pack(E::I32, E::I16, a, b, |v| E::I16.saturate(v)),
        MmxOp::PackusWb => pack(E::I16, E::U8, a, b, |v| E::U8.saturate(v)),
        // unpack/interleave
        MmxOp::PunpcklBw => unpack(E::U8, a, b, false),
        MmxOp::PunpcklWd => unpack(E::U16, a, b, false),
        MmxOp::PunpcklDq => unpack(E::U32, a, b, false),
        MmxOp::PunpckhBw => unpack(E::U8, a, b, true),
        MmxOp::PunpckhWd => unpack(E::U16, a, b, true),
        MmxOp::PunpckhDq => unpack(E::U32, a, b, true),
        // SSE additions
        MmxOp::PavgB => map2(E::U8, a, b, |x, y| (x + y + 1) >> 1),
        MmxOp::PavgW => map2(E::U16, a, b, |x, y| (x + y + 1) >> 1),
        MmxOp::PmaxUb => map2(E::U8, a, b, i64::max),
        MmxOp::PmaxSw => map2(E::I16, a, b, i64::max),
        MmxOp::PminUb => map2(E::U8, a, b, i64::min),
        MmxOp::PminSw => map2(E::I16, a, b, i64::min),
        MmxOp::PsadBw => {
            let sad = (0..8)
                .map(|i| (get_lane(E::U8, a, i) - get_lane(E::U8, b, i)).abs())
                .sum::<i64>();
            sad as u64 & 0xffff
        }
        MmxOp::PmovmskB => {
            let mut mask = 0u64;
            for i in 0..8 {
                if get_lane(E::I8, a, i) < 0 {
                    mask |= 1 << i;
                }
            }
            mask
        }
        MmxOp::PshufW => {
            let mut out = 0u64;
            for i in 0..4 {
                let sel = ((imm >> (2 * i)) & 0x3) as usize;
                out = set_lane(E::U16, out, i, get_lane(E::U16, a, sel));
            }
            out
        }
        MmxOp::PinsrW => set_lane(E::U16, a, (imm & 0x3) as usize, (b & 0xffff) as i64),
        MmxOp::PextrW => get_lane(E::U16, a, (imm & 0x3) as usize) as u64,
        // data movement
        MmxOp::MovQ => a,
        MmxOp::MovdToMmx => b & 0xffff_ffff,
        MmxOp::MovdFromMmx => a & 0xffff_ffff,
        // paper's reduction additions
        MmxOp::PredaddW => (fold(E::I16, a, 0, |s, x| s + x) as u64) & 0xffff_ffff,
        MmxOp::PredaddD => fold(E::I32, a, 0, |s, x| s + x) as u64,
        MmxOp::PredmaxW => (fold(E::I16, a, i64::MIN, i64::max) as u64) & 0xffff,
        MmxOp::PredminW => (fold(E::I16, a, i64::MAX, i64::min) as u64) & 0xffff,
        // memory opcodes are rejected by the assert above
        MmxOp::LoadQ | MmxOp::StoreQ | MmxOp::LoadMovD | MmxOp::StoreMovD => unreachable!(),
    }
}

/// Execute a register-register MMX operation with no immediate.
#[must_use]
pub fn exec_mmx_rr(op: MmxOp, a: u64, b: u64) -> u64 {
    exec_mmx(op, a, b, 0)
}

fn shift(et: ElemType, a: u64, count: u8, f: impl Fn(i64, u32) -> i64) -> u64 {
    let bits = et.bits();
    if u32::from(count) >= bits {
        // Shifting a lane by its full width: logical shifts produce zero,
        // arithmetic shifts produce the sign fill. Clamp to bits-1 for sra.
        if et.is_signed() {
            return super::lanes::map1(et, a, |x| f(x, bits - 1));
        }
        return 0;
    }
    super::lanes::map1(et, a, |x| f(x, u32::from(count)))
}

fn pack(src: ElemType, dst: ElemType, a: u64, b: u64, sat: impl Fn(i64) -> i64) -> u64 {
    let n = src.lanes();
    let mut out = 0u64;
    for i in 0..n {
        out = set_lane(dst, out, i, sat(get_lane(src, a, i)));
    }
    for i in 0..n {
        out = set_lane(dst, out, n + i, sat(get_lane(src, b, i)));
    }
    out
}

fn unpack(et: ElemType, a: u64, b: u64, high: bool) -> u64 {
    let n = et.lanes();
    let base = if high { n / 2 } else { 0 };
    let mut out = 0u64;
    for i in 0..n / 2 {
        out = set_lane(et, out, 2 * i, get_lane(et, a, base + i));
        out = set_lane(et, out, 2 * i + 1, get_lane(et, b, base + i));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::lanes::splat;
    use ElemType as E;

    #[test]
    fn wrapping_vs_saturating_add() {
        let a = splat(E::U8, 250);
        let b = splat(E::U8, 10);
        assert_eq!(exec_mmx_rr(MmxOp::PaddB, a, b), splat(E::U8, 4)); // wraps
        assert_eq!(exec_mmx_rr(MmxOp::PaddusB, a, b), splat(E::U8, 255)); // saturates
    }

    #[test]
    fn signed_saturation() {
        let a = splat(E::I16, 0x7000);
        let b = splat(E::I16, 0x2000);
        assert_eq!(exec_mmx_rr(MmxOp::PaddsW, a, b), splat(E::I16, 0x7fff));
        let a = splat(E::I16, -0x7000);
        assert_eq!(exec_mmx_rr(MmxOp::PsubsW, a, b), splat(E::I16, -0x8000));
    }

    #[test]
    fn multiply_high_low() {
        let a = splat(E::I16, 300);
        let b = splat(E::I16, 400);
        // 300*400 = 120000 = 0x1D4C0: low 16 = 0xD4C0, high 16 = 0x1.
        assert_eq!(exec_mmx_rr(MmxOp::PmullW, a, b) & 0xffff, 0xd4c0);
        assert_eq!(exec_mmx_rr(MmxOp::PmulhW, a, b) & 0xffff, 0x1);
    }

    #[test]
    fn pmulhu_differs_from_pmulh_for_negative() {
        let a = splat(E::I16, -1); // 0xFFFF unsigned = 65535
        let b = splat(E::I16, 2);
        // signed: -1*2 = -2 >> 16 = -1 → 0xffff lane
        assert_eq!(exec_mmx_rr(MmxOp::PmulhW, a, b) & 0xffff, 0xffff);
        // unsigned: 65535*2 = 131070 >> 16 = 1
        assert_eq!(exec_mmx_rr(MmxOp::PmulhuW, a, b) & 0xffff, 0x1);
    }

    #[test]
    fn pmadd_pairs() {
        // words a = [1,2,3,4], b = [10,20,30,40]
        let a = 0x0004_0003_0002_0001u64;
        let b = 0x0028_001e_0014_000au64;
        // dword0 = 1*10+2*20 = 50; dword1 = 3*30+4*40 = 250
        let r = exec_mmx_rr(MmxOp::PmaddWd, a, b);
        assert_eq!(r & 0xffff_ffff, 50);
        assert_eq!(r >> 32, 250);
    }

    #[test]
    fn compares_produce_masks() {
        let a = splat(E::U8, 5);
        let b = splat(E::U8, 5);
        assert_eq!(exec_mmx_rr(MmxOp::PcmpeqB, a, b), u64::MAX);
        let c = splat(E::I16, 3);
        let d = splat(E::I16, -7);
        assert_eq!(exec_mmx_rr(MmxOp::PcmpgtW, c, d), u64::MAX);
        assert_eq!(exec_mmx_rr(MmxOp::PcmpgtW, d, c), 0);
    }

    #[test]
    fn logicals() {
        assert_eq!(exec_mmx_rr(MmxOp::Pand, 0xff00, 0x0ff0), 0x0f00);
        assert_eq!(exec_mmx_rr(MmxOp::Pandn, 0xff00, 0x0ff0), 0x00f0);
        assert_eq!(exec_mmx_rr(MmxOp::Por, 0xff00, 0x0ff0), 0xfff0);
        assert_eq!(exec_mmx_rr(MmxOp::Pxor, 0xff00, 0x0ff0), 0xf0f0);
    }

    #[test]
    fn shifts() {
        let a = splat(E::U16, 0x0f0f);
        assert_eq!(exec_mmx(MmxOp::PsllW, a, 0, 4), splat(E::U16, 0xf0f0));
        assert_eq!(exec_mmx(MmxOp::PsrlW, a, 0, 4), splat(E::U16, 0x00f0));
        let n = splat(E::I16, -16);
        assert_eq!(exec_mmx(MmxOp::PsraW, n, 0, 2), splat(E::I16, -4));
        // full-width shifts
        assert_eq!(exec_mmx(MmxOp::PsllW, a, 0, 16), 0);
        assert_eq!(exec_mmx(MmxOp::PsraW, n, 0, 16), splat(E::I16, -1));
        assert_eq!(exec_mmx(MmxOp::PsllQ, 1, 0, 63), 1u64 << 63);
        assert_eq!(exec_mmx(MmxOp::PsllQ, 1, 0, 64), 0);
    }

    #[test]
    fn pack_saturates() {
        // words 300, -300 must clamp to 255/0 for unsigned pack, 127/-128 signed
        let a = 0x0000_012c_0000_012cu64; // words [300, 0, 300, 0]... lanes: l0=0x012c,l1=0,l2=0x012c,l3=0
        let us = exec_mmx_rr(MmxOp::PackusWb, a, 0);
        assert_eq!(us & 0xff, 255);
        let ss = exec_mmx_rr(MmxOp::PackssWb, a, 0);
        assert_eq!(ss & 0xff, 127);
    }

    #[test]
    fn unpack_interleaves() {
        let a = 0x0807_0605_0403_0201u64; // bytes 1..8
        let b = 0x1817_1615_1413_1211u64; // bytes 0x11..0x18
        let lo = exec_mmx_rr(MmxOp::PunpcklBw, a, b);
        assert_eq!(lo, 0x1404_1303_1202_1101);
        let hi = exec_mmx_rr(MmxOp::PunpckhBw, a, b);
        assert_eq!(hi, 0x1808_1707_1606_1505);
    }

    #[test]
    fn average_rounds_up() {
        let a = splat(E::U8, 1);
        let b = splat(E::U8, 2);
        assert_eq!(exec_mmx_rr(MmxOp::PavgB, a, b), splat(E::U8, 2)); // (1+2+1)>>1
    }

    #[test]
    fn min_max() {
        let a = splat(E::U8, 200);
        let b = splat(E::U8, 100);
        assert_eq!(exec_mmx_rr(MmxOp::PmaxUb, a, b), a);
        assert_eq!(exec_mmx_rr(MmxOp::PminUb, a, b), b);
        let c = splat(E::I16, -5);
        let d = splat(E::I16, 3);
        assert_eq!(exec_mmx_rr(MmxOp::PmaxSw, c, d), d);
        assert_eq!(exec_mmx_rr(MmxOp::PminSw, c, d), c);
    }

    #[test]
    fn sad() {
        let a = splat(E::U8, 10);
        let b = splat(E::U8, 7);
        assert_eq!(exec_mmx_rr(MmxOp::PsadBw, a, b), 24); // 8 lanes × |10-7|
    }

    #[test]
    fn movmsk_collects_sign_bits() {
        let v = 0x80_00_80_00_80_00_80_00u64; // sign bits on odd byte lanes... bytes: 0,0x80 alternating
        assert_eq!(exec_mmx_rr(MmxOp::PmovmskB, v, 0), 0b1010_1010);
    }

    #[test]
    fn shuffle_insert_extract() {
        let a = 0x0004_0003_0002_0001u64;
        // reverse: control 0b00_01_10_11
        let r = exec_mmx(MmxOp::PshufW, a, 0, 0b0001_1011);
        assert_eq!(r, 0x0001_0002_0003_0004);
        let ins = exec_mmx(MmxOp::PinsrW, a, 0xbeef, 2);
        assert_eq!((ins >> 32) & 0xffff, 0xbeef);
        assert_eq!(exec_mmx(MmxOp::PextrW, a, 0, 3), 4);
    }

    #[test]
    fn reductions() {
        let a = 0x0004_0003_0002_0001u64;
        assert_eq!(exec_mmx_rr(MmxOp::PredaddW, a, 0), 10);
        assert_eq!(exec_mmx_rr(MmxOp::PredmaxW, a, 0), 4);
        assert_eq!(exec_mmx_rr(MmxOp::PredminW, a, 0), 1);
        let d = 0x0000_0005_0000_0007u64;
        assert_eq!(exec_mmx_rr(MmxOp::PredaddD, d, 0), 12);
    }

    #[test]
    #[should_panic(expected = "no ALU semantics")]
    fn memory_ops_rejected() {
        let _ = exec_mmx_rr(MmxOp::LoadQ, 0, 0);
    }
}
