//! Fixed-width 64-bit binary encoding of the architectural fields.
//!
//! The timing simulator is trace-driven, so instruction *words* are not
//! strictly needed for simulation — but a real ISA has an encoding, and
//! round-tripping through it is a strong consistency check on the
//! instruction model. The encoding captures every architectural field of
//! an [`Inst`] (opcode, registers, immediate, stream length). Dynamic
//! trace data (PC, effective addresses, branch outcomes) is carried
//! alongside the word, exactly as a trace file stores it.
//!
//! Layout (bit 0 = LSB):
//!
//! ```text
//! [ 0..10)  opcode       global opcode number (Op::code)
//! [10..11)  dst present
//! [11..19)  dst          class:3 | index:5
//! [19..20)  src1 present
//! [20..28)  src1
//! [28..29)  src2 present
//! [29..37)  src2
//! [37..38)  src3 present
//! [38..46)  src3
//! [46..50)  slen − 1
//! [50..64)  imm          14-bit two's complement
//! ```

use crate::inst::Inst;
use crate::op::Op;
use crate::regs::{LogicalReg, RegClass};

/// Errors produced when an instruction cannot be encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeInstError {
    /// Immediate outside the 14-bit signed range.
    ImmOutOfRange(i32),
}

impl core::fmt::Display for EncodeInstError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EncodeInstError::ImmOutOfRange(v) => {
                write!(f, "immediate {v} does not fit in 14 bits")
            }
        }
    }
}

impl std::error::Error for EncodeInstError {}

/// Errors produced when a word cannot be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeInstError {
    /// The opcode number is not assigned.
    BadOpcode(u16),
    /// A register field holds an invalid class or out-of-range index.
    BadRegister(u8),
    /// Stream length field invalid for the opcode.
    BadStreamLen(u8),
}

impl core::fmt::Display for DecodeInstError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeInstError::BadOpcode(c) => write!(f, "unassigned opcode number {c:#x}"),
            DecodeInstError::BadRegister(r) => write!(f, "invalid register encoding {r:#x}"),
            DecodeInstError::BadStreamLen(l) => write!(f, "invalid stream length {l}"),
        }
    }
}

impl std::error::Error for DecodeInstError {}

const IMM_MAX: i32 = (1 << 13) - 1;
const IMM_MIN: i32 = -(1 << 13);

fn encode_reg(r: LogicalReg) -> u64 {
    let class = match r.class {
        RegClass::Int => 0u64,
        RegClass::Fp => 1,
        RegClass::Simd => 2,
        RegClass::Stream => 3,
        RegClass::Acc => 4,
    };
    (class << 5) | u64::from(r.index)
}

fn decode_reg(v: u8) -> Result<LogicalReg, DecodeInstError> {
    let class = match v >> 5 {
        0 => RegClass::Int,
        1 => RegClass::Fp,
        2 => RegClass::Simd,
        3 => RegClass::Stream,
        4 => RegClass::Acc,
        _ => return Err(DecodeInstError::BadRegister(v)),
    };
    let index = v & 0x1f;
    if index >= class.logical_count() {
        return Err(DecodeInstError::BadRegister(v));
    }
    Ok(LogicalReg { class, index })
}

/// Encode the architectural fields of `inst` into a 64-bit word.
///
/// # Errors
///
/// Returns [`EncodeInstError::ImmOutOfRange`] if the immediate does not
/// fit in the 14-bit field.
pub fn encode(inst: &Inst) -> Result<u64, EncodeInstError> {
    if inst.imm > IMM_MAX || inst.imm < IMM_MIN {
        return Err(EncodeInstError::ImmOutOfRange(inst.imm));
    }
    let mut w = u64::from(inst.op.code());
    let put_reg = |w: &mut u64, reg: Option<LogicalReg>, present_bit: u32, field: u32| {
        if let Some(r) = reg {
            *w |= 1u64 << present_bit;
            *w |= encode_reg(r) << field;
        }
    };
    put_reg(&mut w, inst.dst, 10, 11);
    put_reg(&mut w, inst.src1, 19, 20);
    put_reg(&mut w, inst.src2, 28, 29);
    put_reg(&mut w, inst.src3, 37, 38);
    w |= u64::from(inst.slen - 1) << 46;
    w |= (u64::from(inst.imm as u32) & 0x3fff) << 50;
    Ok(w)
}

/// Decode a 64-bit word into an [`Inst`] with zeroed dynamic fields
/// (PC 0, no memory access, no branch outcome).
///
/// # Errors
///
/// Returns a [`DecodeInstError`] if the opcode number is unassigned or a
/// register field is malformed.
pub fn decode(word: u64) -> Result<Inst, DecodeInstError> {
    let code = (word & 0x3ff) as u16;
    let op = Op::from_code(code).ok_or(DecodeInstError::BadOpcode(code))?;
    let get_reg = |present_bit: u32, field: u32| -> Result<Option<LogicalReg>, DecodeInstError> {
        if word & (1u64 << present_bit) != 0 {
            Ok(Some(decode_reg(((word >> field) & 0xff) as u8)?))
        } else {
            Ok(None)
        }
    };
    let slen = ((word >> 46) & 0xf) as u8 + 1;
    let raw_imm = ((word >> 50) & 0x3fff) as u32;
    // sign-extend 14-bit
    let imm = if raw_imm & 0x2000 != 0 {
        (raw_imm | !0x3fffu32) as i32
    } else {
        raw_imm as i32
    };
    let mut inst = Inst::new(op).with_imm(imm).with_slen(slen);
    inst.dst = get_reg(10, 11)?;
    inst.src1 = get_reg(19, 20)?;
    inst.src2 = get_reg(28, 29)?;
    inst.src3 = get_reg(37, 38)?;
    Ok(inst)
}

/// Decode a 64-bit word like [`decode`], placing the instruction at
/// `pc`. Trace decoders use this to rebuild the dynamic PC alongside
/// the architectural fields in one step.
///
/// # Errors
///
/// Returns a [`DecodeInstError`] if the opcode number is unassigned or a
/// register field is malformed.
pub fn decode_at(word: u64, pc: u64) -> Result<Inst, DecodeInstError> {
    decode(word).map(|inst| inst.at(pc))
}

/// Encode the architectural fields of `inst`, substituting a zero
/// immediate when the real one does not fit the 14-bit field. Returns
/// the word and whether the immediate was dropped (the caller must then
/// carry it out of band — the packed trace sidecar does exactly this).
#[must_use]
pub fn encode_lossy_imm(inst: &Inst) -> (u64, bool) {
    match encode(inst) {
        Ok(w) => (w, false),
        Err(EncodeInstError::ImmOutOfRange(_)) => {
            let mut stripped = *inst;
            stripped.imm = 0;
            let w = encode(&stripped).expect("zero immediate always encodes");
            (w, true)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmx::MmxOp;
    use crate::mom::MomOp;
    use crate::regs::{acc, fp, int, simd, stream};
    use crate::scalar::IntOp;

    fn arch_eq(a: &Inst, b: &Inst) -> bool {
        a.op == b.op
            && a.dst == b.dst
            && a.src1 == b.src1
            && a.src2 == b.src2
            && a.src3 == b.src3
            && a.imm == b.imm
            && a.slen == b.slen
    }

    #[test]
    fn round_trip_simple() {
        let i = Inst::int_rrr(IntOp::Add, int(1), int(2), int(3)).with_imm(-5);
        let w = encode(&i).unwrap();
        let d = decode(w).unwrap();
        assert!(arch_eq(&i, &d));
    }

    #[test]
    fn round_trip_every_opcode() {
        for op in Op::all() {
            let i = Inst::new(op);
            let w = encode(&i).unwrap();
            let d = decode(w).unwrap();
            assert!(arch_eq(&i, &d), "{op:?}");
        }
    }

    #[test]
    fn round_trip_all_register_classes() {
        let i = Inst::new(Op::Mom(MomOp::AccMacW))
            .with_dst(acc(1))
            .with_srcs(&[stream(15), stream(3), simd(31)])
            .with_slen(16);
        let w = encode(&i).unwrap();
        let d = decode(w).unwrap();
        assert!(arch_eq(&i, &d));
        let i = Inst::new(Op::Mmx(MmxOp::MovdToMmx))
            .with_dst(simd(0))
            .with_srcs(&[int(31)]);
        let d = decode(encode(&i).unwrap()).unwrap();
        assert!(arch_eq(&i, &d));
        let i = Inst::fp_rrr(crate::scalar::FpOp::FMadd, fp(31), fp(0), fp(15));
        let d = decode(encode(&i).unwrap()).unwrap();
        assert!(arch_eq(&i, &d));
    }

    #[test]
    fn imm_range_enforced() {
        let ok = Inst::new(Op::Int(IntOp::Addi)).with_imm(8191);
        assert!(encode(&ok).is_ok());
        let ok = Inst::new(Op::Int(IntOp::Addi)).with_imm(-8192);
        assert!(encode(&ok).is_ok());
        let bad = Inst::new(Op::Int(IntOp::Addi)).with_imm(8192);
        assert_eq!(encode(&bad), Err(EncodeInstError::ImmOutOfRange(8192)));
    }

    #[test]
    fn bad_words_rejected() {
        // opcode 0x3ff is unassigned
        assert!(matches!(decode(0x3ff), Err(DecodeInstError::BadOpcode(_))));
        // dst present with class 7
        let w = u64::from(Op::Int(IntOp::Add).code()) | (1 << 10) | (0b111_00000u64 << 11);
        assert!(matches!(decode(w), Err(DecodeInstError::BadRegister(_))));
        // stream register index 20 (>15) under class 3
        let w = u64::from(Op::Mom(MomOp::VaddB).code()) | (1 << 10) | ((0b011_10100u64) << 11);
        assert!(matches!(decode(w), Err(DecodeInstError::BadRegister(_))));
    }

    #[test]
    fn decode_at_sets_pc() {
        let i = Inst::int_rrr(IntOp::Add, int(1), int(2), int(3));
        let d = decode_at(encode(&i).unwrap(), 0x00be_ef00).unwrap();
        assert_eq!(d.pc, 0x00be_ef00);
        assert!(arch_eq(&i, &d.at(0)));
    }

    #[test]
    fn encode_lossy_imm_flags_oversized_immediates() {
        let ok = Inst::new(Op::Int(IntOp::Addi)).with_imm(-100);
        let (w, dropped) = encode_lossy_imm(&ok);
        assert!(!dropped);
        assert_eq!(decode(w).unwrap().imm, -100);

        let big = Inst::new(Op::Int(IntOp::Addi)).with_imm(1 << 20);
        let (w, dropped) = encode_lossy_imm(&big);
        assert!(dropped);
        assert_eq!(decode(w).unwrap().imm, 0, "imm zeroed in the word");
    }

    #[test]
    fn slen_encodes_1_to_16() {
        for slen in 1..=16u8 {
            let i = Inst::new(Op::Mom(MomOp::VaddW)).with_slen(slen);
            let d = decode(encode(&i).unwrap()).unwrap();
            assert_eq!(d.slen, slen);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::regs::RegClass;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn arb_reg(rng: &mut SmallRng) -> Option<LogicalReg> {
        if rng.gen_bool(0.2) {
            return None;
        }
        let class = RegClass::ALL[rng.gen_range(0..5usize)];
        let index: u8 = rng.gen_range(0..32);
        Some(LogicalReg {
            class,
            index: index % class.logical_count(),
        })
    }

    /// Exhaustive over opcodes, randomized over operands: every opcode
    /// round-trips through encode/decode for several operand draws.
    #[test]
    fn encode_decode_round_trips() {
        let mut rng = SmallRng::seed_from_u64(0xC0DE);
        for op in Op::all() {
            for case in 0..8 {
                let imm: i32 = rng.gen_range(-8192..8192);
                let slen: u8 = rng.gen_range(1..17);
                let mut inst = Inst::new(op).with_imm(imm).with_slen(slen);
                inst.dst = arb_reg(&mut rng);
                inst.src1 = arb_reg(&mut rng);
                inst.src2 = arb_reg(&mut rng);
                inst.src3 = arb_reg(&mut rng);
                let word = encode(&inst).unwrap();
                let back = decode(word).unwrap();
                assert_eq!(back.op, inst.op, "{op:?} case {case}");
                assert_eq!(back.dst, inst.dst, "{op:?} case {case}");
                assert_eq!(back.src1, inst.src1, "{op:?} case {case}");
                assert_eq!(back.src2, inst.src2, "{op:?} case {case}");
                assert_eq!(back.src3, inst.src3, "{op:?} case {case}");
                assert_eq!(back.imm, inst.imm, "{op:?} case {case}");
                assert_eq!(back.slen, inst.slen, "{op:?} case {case}");
            }
        }
    }

    #[test]
    fn decode_never_panics() {
        let mut rng = SmallRng::seed_from_u64(0xDEC0);
        for _ in 0..4096 {
            let word: u64 = rng.gen_range(0..u64::MAX);
            let _ = decode(word);
        }
        // And the all-ones word, which gen_range's half-open bound skips.
        let _ = decode(u64::MAX);
    }
}
