//! The unified operation type and its classifications.
//!
//! [`Op`] wraps the per-class opcode enums into a single type used by
//! [`crate::inst::Inst`]. Two classification axes matter to the pipeline
//! model and the statistics:
//!
//! * [`OpKind`] — the *reporting* class used by the paper's instruction
//!   breakdown (integer / FP / SIMD arithmetic / memory / control);
//! * [`QueueKind`] — which of the four instruction queues of the modeled
//!   processor the instruction is dispatched to (§3, figure 2).

use crate::mmx::MmxOp;
use crate::mom::MomOp;
use crate::scalar::{CtlOp, FpOp, IntOp, MemOp};
use serde::{Deserialize, Serialize};

/// Any operation of any of the three instruction sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Scalar integer ALU operation.
    Int(IntOp),
    /// Scalar floating-point operation.
    Fp(FpOp),
    /// Scalar memory operation.
    Mem(MemOp),
    /// Control transfer.
    Ctl(CtlOp),
    /// MMX-like packed μ-SIMD operation.
    Mmx(MmxOp),
    /// MOM streaming μ-SIMD operation.
    Mom(MomOp),
}

/// Coarse instruction class used for workload characterization
/// (Table 3 of the paper reports: integer, FP, SIMD arithmetic, memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OpKind {
    /// Scalar integer arithmetic (including branches, per the paper's
    /// "integer" bucket which holds all the loop/protocol overhead).
    Integer,
    /// Scalar floating point.
    Fp,
    /// SIMD arithmetic (MMX or MOM non-memory ops).
    SimdArith,
    /// Memory (scalar *and* vector loads/stores, per Table 3's single
    /// memory bucket).
    Memory,
}

impl OpKind {
    /// All kinds, in Table 3's row order.
    pub const ALL: [OpKind; 4] = [
        OpKind::Integer,
        OpKind::Fp,
        OpKind::SimdArith,
        OpKind::Memory,
    ];

    /// Row label used when printing Table 3.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            OpKind::Integer => "INT",
            OpKind::Fp => "FP",
            OpKind::SimdArith => "SIMD",
            OpKind::Memory => "MEM",
        }
    }
}

impl core::fmt::Display for OpKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// The instruction queue an operation is dispatched to (§3: "Instructions
/// decoded and renamed are distributed by the dispatch logic to the
/// appropriate instruction queue").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum QueueKind {
    /// Integer queue (ALU + control).
    Int,
    /// Memory queue (scalar and vector loads/stores).
    Mem,
    /// Floating-point queue.
    Fp,
    /// Multimedia queue (MMX or MOM arithmetic).
    Simd,
}

impl QueueKind {
    /// All queues in a stable order.
    pub const ALL: [QueueKind; 4] = [
        QueueKind::Int,
        QueueKind::Mem,
        QueueKind::Fp,
        QueueKind::Simd,
    ];
}

impl core::fmt::Display for QueueKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            QueueKind::Int => "intq",
            QueueKind::Mem => "memq",
            QueueKind::Fp => "fpq",
            QueueKind::Simd => "simdq",
        };
        f.write_str(s)
    }
}

impl Op {
    /// The reporting class of this operation (Table 3 buckets).
    #[must_use]
    pub fn kind(self) -> OpKind {
        match self {
            Op::Int(_) | Op::Ctl(_) => OpKind::Integer,
            Op::Fp(_) => OpKind::Fp,
            Op::Mem(_) => OpKind::Memory,
            Op::Mmx(m) => {
                if m.is_mem() {
                    OpKind::Memory
                } else {
                    OpKind::SimdArith
                }
            }
            Op::Mom(m) => {
                if m.is_mem() {
                    OpKind::Memory
                } else {
                    OpKind::SimdArith
                }
            }
        }
    }

    /// The instruction queue this operation dispatches to.
    #[must_use]
    pub fn queue(self) -> QueueKind {
        match self {
            Op::Int(_) | Op::Ctl(_) => QueueKind::Int,
            Op::Fp(_) => QueueKind::Fp,
            Op::Mem(_) => QueueKind::Mem,
            Op::Mmx(m) => {
                if m.is_mem() {
                    QueueKind::Mem
                } else {
                    QueueKind::Simd
                }
            }
            Op::Mom(m) => {
                if m.is_mem() {
                    QueueKind::Mem
                } else {
                    QueueKind::Simd
                }
            }
        }
    }

    /// Whether the operation reads or writes memory.
    #[must_use]
    pub fn is_mem(self) -> bool {
        match self {
            Op::Mem(_) => true,
            Op::Mmx(m) => m.is_mem(),
            Op::Mom(m) => m.is_mem(),
            _ => false,
        }
    }

    /// Whether the operation writes memory.
    #[must_use]
    pub fn is_store(self) -> bool {
        match self {
            Op::Mem(m) => m.is_store(),
            Op::Mmx(m) => m.is_store(),
            Op::Mom(m) => m.is_store(),
            _ => false,
        }
    }

    /// Whether the operation is a control transfer.
    #[must_use]
    pub fn is_control(self) -> bool {
        matches!(self, Op::Ctl(c) if c.is_transfer())
    }

    /// Whether this is a MOM (stream) operation.
    #[must_use]
    pub fn is_stream(self) -> bool {
        matches!(self, Op::Mom(_))
    }

    /// Whether this is a vector/SIMD operation of either extension
    /// (used by the BALANCE fetch policy to classify fetch groups).
    #[must_use]
    pub fn is_simd(self) -> bool {
        matches!(self, Op::Mmx(_) | Op::Mom(_))
    }

    /// Global opcode number, unique across all classes (used by the
    /// binary encoding).
    #[must_use]
    pub fn code(self) -> u16 {
        match self {
            Op::Int(o) => IntOp::ALL.iter().position(|&x| x == o).expect("in ALL") as u16,
            Op::Fp(o) => 0x040 + FpOp::ALL.iter().position(|&x| x == o).expect("in ALL") as u16,
            Op::Mem(o) => 0x080 + MemOp::ALL.iter().position(|&x| x == o).expect("in ALL") as u16,
            Op::Ctl(o) => 0x0c0 + CtlOp::ALL.iter().position(|&x| x == o).expect("in ALL") as u16,
            Op::Mmx(o) => 0x100 + MmxOp::ALL.iter().position(|&x| x == o).expect("in ALL") as u16,
            Op::Mom(o) => 0x200 + MomOp::ALL.iter().position(|&x| x == o).expect("in ALL") as u16,
        }
    }

    /// Inverse of [`Op::code`]. Returns `None` for unassigned numbers.
    #[must_use]
    pub fn from_code(code: u16) -> Option<Op> {
        let idx = (code & 0x3f) as usize;
        match code & !0x3f {
            0x000 => IntOp::ALL.get(idx).copied().map(Op::Int),
            0x040 => FpOp::ALL.get(idx).copied().map(Op::Fp),
            0x080 => MemOp::ALL.get(idx).copied().map(Op::Mem),
            0x0c0 => CtlOp::ALL.get(idx).copied().map(Op::Ctl),
            0x100 | 0x140 => {
                let idx = (code - 0x100) as usize;
                MmxOp::ALL.get(idx).copied().map(Op::Mmx)
            }
            0x200 | 0x240 => {
                let idx = (code - 0x200) as usize;
                MomOp::ALL.get(idx).copied().map(Op::Mom)
            }
            _ => None,
        }
    }

    /// Mnemonic of the wrapped opcode.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Op::Int(o) => o.mnemonic(),
            Op::Fp(o) => o.mnemonic(),
            Op::Mem(o) => o.mnemonic(),
            Op::Ctl(o) => o.mnemonic(),
            Op::Mmx(o) => o.mnemonic(),
            Op::Mom(o) => o.mnemonic(),
        }
    }

    /// Iterate over every operation of every class (used by encode/disasm
    /// exhaustive tests).
    pub fn all() -> impl Iterator<Item = Op> {
        IntOp::ALL
            .iter()
            .map(|&o| Op::Int(o))
            .chain(FpOp::ALL.iter().map(|&o| Op::Fp(o)))
            .chain(MemOp::ALL.iter().map(|&o| Op::Mem(o)))
            .chain(CtlOp::ALL.iter().map(|&o| Op::Ctl(o)))
            .chain(MmxOp::ALL.iter().map(|&o| Op::Mmx(o)))
            .chain(MomOp::ALL.iter().map(|&o| Op::Mom(o)))
    }
}

impl core::fmt::Display for Op {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn code_round_trips_for_every_op() {
        for op in Op::all() {
            let code = op.code();
            assert_eq!(Op::from_code(code), Some(op), "code {code:#x}");
        }
    }

    #[test]
    fn codes_are_unique() {
        let codes: HashSet<u16> = Op::all().map(Op::code).collect();
        assert_eq!(codes.len(), Op::all().count());
    }

    #[test]
    fn unknown_codes_decode_to_none() {
        assert_eq!(Op::from_code(0x3ff), None);
        assert_eq!(Op::from_code(0xfff), None);
    }

    #[test]
    fn kinds_match_table3_buckets() {
        assert_eq!(Op::Int(IntOp::Add).kind(), OpKind::Integer);
        assert_eq!(Op::Ctl(CtlOp::Beq).kind(), OpKind::Integer);
        assert_eq!(Op::Fp(FpOp::FMul).kind(), OpKind::Fp);
        assert_eq!(Op::Mmx(MmxOp::PaddW).kind(), OpKind::SimdArith);
        assert_eq!(Op::Mmx(MmxOp::LoadQ).kind(), OpKind::Memory);
        assert_eq!(Op::Mom(MomOp::VmaddWd).kind(), OpKind::SimdArith);
        assert_eq!(Op::Mom(MomOp::VloadStride).kind(), OpKind::Memory);
        assert_eq!(Op::Mem(MemOp::LoadW).kind(), OpKind::Memory);
    }

    #[test]
    fn queues_match_figure2() {
        assert_eq!(Op::Int(IntOp::Add).queue(), QueueKind::Int);
        assert_eq!(Op::Ctl(CtlOp::Jump).queue(), QueueKind::Int);
        assert_eq!(Op::Fp(FpOp::FAdd).queue(), QueueKind::Fp);
        assert_eq!(Op::Mem(MemOp::StoreB).queue(), QueueKind::Mem);
        assert_eq!(Op::Mmx(MmxOp::PmaddWd).queue(), QueueKind::Simd);
        assert_eq!(Op::Mmx(MmxOp::StoreQ).queue(), QueueKind::Mem);
        assert_eq!(Op::Mom(MomOp::AccMacW).queue(), QueueKind::Simd);
        assert_eq!(Op::Mom(MomOp::VloadQ).queue(), QueueKind::Mem);
    }

    #[test]
    fn simd_and_stream_predicates() {
        assert!(Op::Mmx(MmxOp::PaddB).is_simd());
        assert!(Op::Mom(MomOp::VaddB).is_simd());
        assert!(!Op::Int(IntOp::Add).is_simd());
        assert!(Op::Mom(MomOp::VaddB).is_stream());
        assert!(!Op::Mmx(MmxOp::PaddB).is_stream());
    }

    #[test]
    fn store_predicates() {
        assert!(Op::Mem(MemOp::StoreD).is_store());
        assert!(Op::Mmx(MmxOp::StoreQ).is_store());
        assert!(Op::Mom(MomOp::VstoreStride).is_store());
        assert!(!Op::Mem(MemOp::LoadD).is_store());
    }
}
