//! Packed sub-word element types.
//!
//! Media data is dominated by small fixed-point samples (8-bit pixels,
//! 16-bit intermediate products). A 64-bit μ-SIMD register holds eight
//! bytes, four half-words or two words; the element type of an operation
//! determines lane count, signedness and saturation bounds.

use serde::{Deserialize, Serialize};

/// Element type of a packed operation's lanes within a 64-bit register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ElemType {
    /// Unsigned 8-bit lanes (8 per register).
    U8,
    /// Signed 8-bit lanes (8 per register).
    I8,
    /// Unsigned 16-bit lanes (4 per register).
    U16,
    /// Signed 16-bit lanes (4 per register).
    I16,
    /// Unsigned 32-bit lanes (2 per register).
    U32,
    /// Signed 32-bit lanes (2 per register).
    I32,
    /// The whole 64-bit register as a single lane.
    Q64,
}

impl ElemType {
    /// Lane width in bits.
    #[must_use]
    pub const fn bits(self) -> u32 {
        match self {
            ElemType::U8 | ElemType::I8 => 8,
            ElemType::U16 | ElemType::I16 => 16,
            ElemType::U32 | ElemType::I32 => 32,
            ElemType::Q64 => 64,
        }
    }

    /// Number of lanes in a 64-bit register.
    #[must_use]
    pub const fn lanes(self) -> usize {
        (64 / self.bits()) as usize
    }

    /// Whether lanes are interpreted as signed two's-complement values.
    #[must_use]
    pub const fn is_signed(self) -> bool {
        matches!(self, ElemType::I8 | ElemType::I16 | ElemType::I32)
    }

    /// Smallest representable lane value.
    #[must_use]
    pub const fn min_value(self) -> i64 {
        match self {
            ElemType::U8 | ElemType::U16 | ElemType::U32 => 0,
            ElemType::I8 => i8::MIN as i64,
            ElemType::I16 => i16::MIN as i64,
            ElemType::I32 => i32::MIN as i64,
            ElemType::Q64 => i64::MIN,
        }
    }

    /// Largest representable lane value.
    #[must_use]
    pub const fn max_value(self) -> i64 {
        match self {
            ElemType::U8 => u8::MAX as i64,
            ElemType::I8 => i8::MAX as i64,
            ElemType::U16 => u16::MAX as i64,
            ElemType::I16 => i16::MAX as i64,
            ElemType::U32 => u32::MAX as i64,
            ElemType::I32 => i32::MAX as i64,
            ElemType::Q64 => i64::MAX,
        }
    }

    /// Clamp `v` into the representable range of this element type
    /// (saturating arithmetic).
    #[must_use]
    pub fn saturate(self, v: i64) -> i64 {
        v.clamp(self.min_value(), self.max_value())
    }

    /// The signed counterpart of this element type (identity for signed
    /// and [`ElemType::Q64`]).
    #[must_use]
    pub const fn as_signed(self) -> ElemType {
        match self {
            ElemType::U8 => ElemType::I8,
            ElemType::U16 => ElemType::I16,
            ElemType::U32 => ElemType::I32,
            other => other,
        }
    }
}

impl core::fmt::Display for ElemType {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            ElemType::U8 => "u8",
            ElemType::I8 => "i8",
            ElemType::U16 => "u16",
            ElemType::I16 => "i16",
            ElemType::U32 => "u32",
            ElemType::I32 => "i32",
            ElemType::Q64 => "q64",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_geometry() {
        assert_eq!(ElemType::U8.lanes(), 8);
        assert_eq!(ElemType::I16.lanes(), 4);
        assert_eq!(ElemType::U32.lanes(), 2);
        assert_eq!(ElemType::Q64.lanes(), 1);
        for t in [
            ElemType::U8,
            ElemType::I8,
            ElemType::U16,
            ElemType::I16,
            ElemType::U32,
            ElemType::I32,
            ElemType::Q64,
        ] {
            assert_eq!(t.bits() as usize * t.lanes(), 64);
        }
    }

    #[test]
    fn saturation_bounds() {
        assert_eq!(ElemType::U8.saturate(300), 255);
        assert_eq!(ElemType::U8.saturate(-3), 0);
        assert_eq!(ElemType::I16.saturate(40000), 32767);
        assert_eq!(ElemType::I16.saturate(-40000), -32768);
        assert_eq!(ElemType::I8.saturate(5), 5);
    }

    #[test]
    fn signedness() {
        assert!(ElemType::I8.is_signed());
        assert!(!ElemType::U16.is_signed());
        assert_eq!(ElemType::U16.as_signed(), ElemType::I16);
        assert_eq!(ElemType::I32.as_signed(), ElemType::I32);
    }
}
