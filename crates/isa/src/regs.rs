//! Logical register model.
//!
//! The paper's machine has five architectural register spaces:
//!
//! | class | logical count | width | notes |
//! |-------|---------------|-------|-------|
//! | integer | 32 | 64 b | `r0` hardwired to zero, `r31` is the MOM stream-length register (renamed through the integer pool, §3) |
//! | floating point | 32 | 64 b | |
//! | MMX (packed μ-SIMD) | 32 | 64 b | the paper widens SSE's 8 logical registers to 32 |
//! | MOM stream | 16 | 16 × 64 b | each stream register is 16 MMX-like registers |
//! | packed accumulator | 2 | 192 b | MDMX-style reduction accumulators |

use serde::{Deserialize, Serialize};

/// Number of logical integer registers.
pub const NUM_INT_REGS: u8 = 32;
/// Number of logical floating-point registers.
pub const NUM_FP_REGS: u8 = 32;
/// Number of logical MMX (64-bit packed) registers.
pub const NUM_SIMD_REGS: u8 = 32;
/// Number of logical MOM stream registers.
pub const NUM_STREAM_REGS: u8 = 16;
/// Number of logical packed accumulators.
pub const NUM_ACC_REGS: u8 = 2;

/// Integer register hardwired to zero.
pub const ZERO_REG: u8 = 0;
/// Integer register index used as the MOM stream-length register.
///
/// The paper renames the stream-length register through the integer
/// register pool; modeling it as integer register 31 gives exactly that
/// behaviour in the rename stage.
pub const STREAM_LEN_REG: u8 = 31;

/// Architectural register class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RegClass {
    /// 64-bit scalar integer registers.
    Int,
    /// 64-bit scalar floating-point registers.
    Fp,
    /// 64-bit packed μ-SIMD (MMX-like) registers.
    Simd,
    /// MOM stream registers (16 × 64-bit element groups each).
    Stream,
    /// 192-bit packed accumulators.
    Acc,
}

impl RegClass {
    /// All register classes, in a stable order.
    pub const ALL: [RegClass; 5] = [
        RegClass::Int,
        RegClass::Fp,
        RegClass::Simd,
        RegClass::Stream,
        RegClass::Acc,
    ];

    /// Number of logical registers in this class.
    #[must_use]
    pub const fn logical_count(self) -> u8 {
        match self {
            RegClass::Int => NUM_INT_REGS,
            RegClass::Fp => NUM_FP_REGS,
            RegClass::Simd => NUM_SIMD_REGS,
            RegClass::Stream => NUM_STREAM_REGS,
            RegClass::Acc => NUM_ACC_REGS,
        }
    }

    /// Short lowercase prefix used in disassembly (`r`, `f`, `m`, `v`, `a`).
    #[must_use]
    pub const fn prefix(self) -> &'static str {
        match self {
            RegClass::Int => "r",
            RegClass::Fp => "f",
            RegClass::Simd => "m",
            RegClass::Stream => "v",
            RegClass::Acc => "a",
        }
    }
}

impl core::fmt::Display for RegClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            RegClass::Int => "int",
            RegClass::Fp => "fp",
            RegClass::Simd => "simd",
            RegClass::Stream => "stream",
            RegClass::Acc => "acc",
        };
        f.write_str(s)
    }
}

/// A logical (architectural) register: class plus index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LogicalReg {
    /// Register class.
    pub class: RegClass,
    /// Index within the class (`0 .. class.logical_count()`).
    pub index: u8,
}

impl LogicalReg {
    /// Create a logical register, validating the index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for `class`.
    #[must_use]
    pub fn new(class: RegClass, index: u8) -> Self {
        assert!(
            index < class.logical_count(),
            "register index {index} out of range for class {class}",
        );
        LogicalReg { class, index }
    }

    /// Whether this is the hardwired integer zero register.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.class == RegClass::Int && self.index == ZERO_REG
    }

    /// Whether this is the MOM stream-length register (integer `r31`).
    #[must_use]
    pub fn is_stream_len(self) -> bool {
        self.class == RegClass::Int && self.index == STREAM_LEN_REG
    }
}

impl core::fmt::Display for LogicalReg {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}{}", self.class.prefix(), self.index)
    }
}

/// Shorthand constructor for an integer register.
///
/// # Panics
///
/// Panics if `i >= 32`.
#[must_use]
pub fn int(i: u8) -> LogicalReg {
    LogicalReg::new(RegClass::Int, i)
}

/// Shorthand constructor for a floating-point register.
///
/// # Panics
///
/// Panics if `i >= 32`.
#[must_use]
pub fn fp(i: u8) -> LogicalReg {
    LogicalReg::new(RegClass::Fp, i)
}

/// Shorthand constructor for an MMX register.
///
/// # Panics
///
/// Panics if `i >= 32`.
#[must_use]
pub fn simd(i: u8) -> LogicalReg {
    LogicalReg::new(RegClass::Simd, i)
}

/// Shorthand constructor for a MOM stream register.
///
/// # Panics
///
/// Panics if `i >= 16`.
#[must_use]
pub fn stream(i: u8) -> LogicalReg {
    LogicalReg::new(RegClass::Stream, i)
}

/// Shorthand constructor for a packed accumulator.
///
/// # Panics
///
/// Panics if `i >= 2`.
#[must_use]
pub fn acc(i: u8) -> LogicalReg {
    LogicalReg::new(RegClass::Acc, i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_counts_match_paper() {
        assert_eq!(RegClass::Int.logical_count(), 32);
        assert_eq!(RegClass::Fp.logical_count(), 32);
        // "67 instructions and 32 logical registers (as opposed to 8)"
        assert_eq!(RegClass::Simd.logical_count(), 32);
        // "16 logical stream μ-SIMD registers"
        assert_eq!(RegClass::Stream.logical_count(), 16);
        // "2 logical packed accumulators of 192 bits"
        assert_eq!(RegClass::Acc.logical_count(), 2);
    }

    #[test]
    fn display_forms() {
        assert_eq!(int(5).to_string(), "r5");
        assert_eq!(fp(1).to_string(), "f1");
        assert_eq!(simd(31).to_string(), "m31");
        assert_eq!(stream(15).to_string(), "v15");
        assert_eq!(acc(1).to_string(), "a1");
    }

    #[test]
    fn special_registers() {
        assert!(int(0).is_zero());
        assert!(!int(1).is_zero());
        assert!(int(31).is_stream_len());
        assert!(!simd(31).is_stream_len());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = stream(16);
    }

    #[test]
    fn ordering_is_stable() {
        assert!(int(0) < int(1));
        assert!(int(31) < fp(0));
    }
}
