//! The decoded-instruction record.
//!
//! [`Inst`] is the unit that workload generators emit and the pipeline
//! model consumes. It carries the architectural fields (opcode, register
//! operands, immediate) plus the *dynamic* trace information a
//! trace-driven timing simulator needs: the effective memory address(es)
//! and the branch outcome.

use crate::mmx::MmxOp;
use crate::mom::MomOp;
use crate::op::{Op, OpKind, QueueKind};
use crate::regs::LogicalReg;
use crate::scalar::{CtlOp, FpOp, IntOp, MemOp};
use serde::{Deserialize, Serialize};

/// Dynamic memory access descriptor attached to memory instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemRef {
    /// Effective (virtual) address of the first element access.
    pub addr: u64,
    /// Size of each element access in bytes.
    pub size: u8,
    /// Distance in bytes between consecutive element accesses
    /// (stream instructions; `0` for scalar/MMX single accesses).
    pub stride: i64,
    /// Number of element accesses (MOM stream length; `1` otherwise).
    pub count: u8,
    /// Whether the access writes memory.
    pub is_store: bool,
}

impl MemRef {
    /// A single scalar access.
    #[must_use]
    pub fn scalar(addr: u64, size: u8, is_store: bool) -> Self {
        MemRef {
            addr,
            size,
            stride: 0,
            count: 1,
            is_store,
        }
    }

    /// A stream of `count` accesses of `size` bytes separated by `stride`.
    #[must_use]
    pub fn stream(addr: u64, size: u8, stride: i64, count: u8, is_store: bool) -> Self {
        MemRef {
            addr,
            size,
            stride,
            count,
            is_store,
        }
    }

    /// Address of the `i`-th element access.
    #[must_use]
    pub fn elem_addr(&self, i: u8) -> u64 {
        debug_assert!(i < self.count);
        (self.addr as i64 + self.stride * i64::from(i)) as u64
    }

    /// Iterate over all element addresses of this access.
    pub fn elem_addrs(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.count).map(|i| self.elem_addr(i))
    }

    /// Total bytes touched.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        u64::from(self.size) * u64::from(self.count)
    }
}

/// Dynamic branch outcome attached to control-transfer instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BranchInfo {
    /// Whether the branch was taken in the trace.
    pub taken: bool,
    /// Target address when taken.
    pub target: u64,
}

/// A decoded instruction with its dynamic trace information.
///
/// `Inst` is plain data (`Copy`); the pipeline wraps it in its own
/// bookkeeping structures rather than mutating it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Inst {
    /// Program counter of this instruction.
    pub pc: u64,
    /// The operation.
    pub op: Op,
    /// Destination register, if any.
    pub dst: Option<LogicalReg>,
    /// First source register.
    pub src1: Option<LogicalReg>,
    /// Second source register.
    pub src2: Option<LogicalReg>,
    /// Third source register (paper's multi-source MMX additions, store
    /// data registers, select masks).
    pub src3: Option<LogicalReg>,
    /// Immediate operand (shift counts, offsets, shuffle controls).
    pub imm: i32,
    /// Memory access descriptor for memory operations.
    pub mem: Option<MemRef>,
    /// Branch outcome for control transfers.
    pub branch: Option<BranchInfo>,
    /// Stream length for MOM operations (`1` for everything else).
    /// Matches the dynamic value of the stream-length register.
    pub slen: u8,
}

impl Inst {
    /// Base constructor: a register-to-register operation.
    #[must_use]
    pub fn new(op: Op) -> Self {
        Inst {
            pc: 0,
            op,
            dst: None,
            src1: None,
            src2: None,
            src3: None,
            imm: 0,
            mem: None,
            branch: None,
            slen: 1,
        }
    }

    /// Builder: set the program counter.
    #[must_use]
    pub fn at(mut self, pc: u64) -> Self {
        self.pc = pc;
        self
    }

    /// Builder: set destination register.
    #[must_use]
    pub fn with_dst(mut self, dst: LogicalReg) -> Self {
        self.dst = Some(dst);
        self
    }

    /// Builder: set source registers (up to three).
    #[must_use]
    pub fn with_srcs(mut self, srcs: &[LogicalReg]) -> Self {
        assert!(srcs.len() <= 3, "at most three source registers");
        self.src1 = srcs.first().copied();
        self.src2 = srcs.get(1).copied();
        self.src3 = srcs.get(2).copied();
        self
    }

    /// Builder: set the immediate.
    #[must_use]
    pub fn with_imm(mut self, imm: i32) -> Self {
        self.imm = imm;
        self
    }

    /// Builder: attach a memory access.
    #[must_use]
    pub fn with_mem(mut self, mem: MemRef) -> Self {
        self.mem = Some(mem);
        self
    }

    /// Builder: attach a branch outcome.
    #[must_use]
    pub fn with_branch(mut self, branch: BranchInfo) -> Self {
        self.branch = Some(branch);
        self
    }

    /// Builder: set the stream length (MOM).
    ///
    /// # Panics
    ///
    /// Panics if `slen` is zero or exceeds [`crate::MAX_STREAM_LEN`].
    #[must_use]
    pub fn with_slen(mut self, slen: u8) -> Self {
        assert!(
            (1..=crate::MAX_STREAM_LEN).contains(&slen),
            "stream length {slen} out of range"
        );
        self.slen = slen;
        self
    }

    // ---- convenience constructors used pervasively by the generators ----

    /// Integer three-register operation.
    #[must_use]
    pub fn int_rrr(op: IntOp, dst: LogicalReg, a: LogicalReg, b: LogicalReg) -> Self {
        Inst::new(Op::Int(op)).with_dst(dst).with_srcs(&[a, b])
    }

    /// Integer register-immediate operation.
    #[must_use]
    pub fn int_rri(op: IntOp, dst: LogicalReg, a: LogicalReg, imm: i32) -> Self {
        Inst::new(Op::Int(op))
            .with_dst(dst)
            .with_srcs(&[a])
            .with_imm(imm)
    }

    /// Floating-point three-register operation.
    #[must_use]
    pub fn fp_rrr(op: FpOp, dst: LogicalReg, a: LogicalReg, b: LogicalReg) -> Self {
        Inst::new(Op::Fp(op)).with_dst(dst).with_srcs(&[a, b])
    }

    /// Scalar load: `dst = [base + imm]`.
    #[must_use]
    pub fn load(op: MemOp, dst: LogicalReg, base: LogicalReg, addr: u64) -> Self {
        debug_assert!(op.is_load());
        Inst::new(Op::Mem(op))
            .with_dst(dst)
            .with_srcs(&[base])
            .with_mem(MemRef::scalar(addr, op.size(), false))
    }

    /// Scalar store: `[base + imm] = data`.
    #[must_use]
    pub fn store(op: MemOp, data: LogicalReg, base: LogicalReg, addr: u64) -> Self {
        debug_assert!(op.is_store());
        Inst::new(Op::Mem(op))
            .with_srcs(&[base, data])
            .with_mem(MemRef::scalar(addr, op.size(), true))
    }

    /// Conditional branch with its outcome.
    #[must_use]
    pub fn branch(op: CtlOp, cond: LogicalReg, taken: bool, target: u64) -> Self {
        debug_assert!(op.is_conditional());
        Inst::new(Op::Ctl(op))
            .with_srcs(&[cond])
            .with_branch(BranchInfo { taken, target })
    }

    /// Unconditional jump.
    #[must_use]
    pub fn jump(target: u64) -> Self {
        Inst::new(Op::Ctl(CtlOp::Jump)).with_branch(BranchInfo {
            taken: true,
            target,
        })
    }

    /// MMX register-register-register operation.
    #[must_use]
    pub fn mmx(op: MmxOp, dst: LogicalReg, a: LogicalReg, b: LogicalReg) -> Self {
        debug_assert!(!op.is_mem());
        Inst::new(Op::Mmx(op)).with_dst(dst).with_srcs(&[a, b])
    }

    /// MMX packed load.
    #[must_use]
    pub fn mmx_load(dst: LogicalReg, base: LogicalReg, addr: u64) -> Self {
        Inst::new(Op::Mmx(MmxOp::LoadQ))
            .with_dst(dst)
            .with_srcs(&[base])
            .with_mem(MemRef::scalar(addr, 8, false))
    }

    /// MMX packed store.
    #[must_use]
    pub fn mmx_store(data: LogicalReg, base: LogicalReg, addr: u64) -> Self {
        Inst::new(Op::Mmx(MmxOp::StoreQ))
            .with_srcs(&[base, data])
            .with_mem(MemRef::scalar(addr, 8, true))
    }

    /// MOM stream register-register operation of length `slen`.
    #[must_use]
    pub fn mom(op: MomOp, dst: LogicalReg, a: LogicalReg, b: LogicalReg, slen: u8) -> Self {
        debug_assert!(!op.is_mem());
        Inst::new(Op::Mom(op))
            .with_dst(dst)
            .with_srcs(&[a, b])
            .with_slen(slen)
    }

    /// MOM stream load of `slen` 64-bit groups separated by `stride` bytes.
    #[must_use]
    pub fn mom_load(dst: LogicalReg, base: LogicalReg, addr: u64, stride: i64, slen: u8) -> Self {
        let op = if stride == 8 {
            MomOp::VloadQ
        } else {
            MomOp::VloadStride
        };
        Inst::new(Op::Mom(op))
            .with_dst(dst)
            .with_srcs(&[base])
            .with_slen(slen)
            .with_mem(MemRef::stream(addr, 8, stride, slen, false))
    }

    /// MOM stream store.
    #[must_use]
    pub fn mom_store(data: LogicalReg, base: LogicalReg, addr: u64, stride: i64, slen: u8) -> Self {
        let op = if stride == 8 {
            MomOp::VstoreQ
        } else {
            MomOp::VstoreStride
        };
        Inst::new(Op::Mom(op))
            .with_srcs(&[base, data])
            .with_slen(slen)
            .with_mem(MemRef::stream(addr, 8, stride, slen, true))
    }

    // ---- classification helpers -----------------------------------------

    /// Reporting class (Table 3 bucket).
    #[must_use]
    pub fn kind(&self) -> OpKind {
        self.op.kind()
    }

    /// Dispatch queue.
    #[must_use]
    pub fn queue(&self) -> QueueKind {
        self.op.queue()
    }

    /// Equivalent instruction count for cross-ISA comparisons.
    ///
    /// Per §4.2 of the paper: "a MOM μ-SIMD instruction that operates
    /// with, say, a stream length of 11, counts as eleven instructions".
    #[must_use]
    pub fn equivalent_count(&self) -> u64 {
        match self.op {
            Op::Mom(_) => u64::from(self.slen),
            _ => 1,
        }
    }

    /// Whether this instruction is a conditional branch.
    #[must_use]
    pub fn is_cond_branch(&self) -> bool {
        matches!(self.op, Op::Ctl(c) if c.is_conditional())
    }

    /// All source registers, in order.
    pub fn sources(&self) -> impl Iterator<Item = LogicalReg> + '_ {
        [self.src1, self.src2, self.src3].into_iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::{fp, int, simd, stream};

    #[test]
    fn memref_elem_addresses() {
        let m = MemRef::stream(0x1000, 8, 64, 4, false);
        let addrs: Vec<u64> = m.elem_addrs().collect();
        assert_eq!(addrs, vec![0x1000, 0x1040, 0x1080, 0x10c0]);
        assert_eq!(m.total_bytes(), 32);
    }

    #[test]
    fn memref_negative_stride() {
        let m = MemRef::stream(0x1000, 8, -8, 3, false);
        let addrs: Vec<u64> = m.elem_addrs().collect();
        assert_eq!(addrs, vec![0x1000, 0xff8, 0xff0]);
    }

    #[test]
    fn scalar_load_store_shape() {
        let ld = Inst::load(MemOp::LoadW, int(3), int(4), 0x2000);
        assert_eq!(ld.kind(), OpKind::Memory);
        assert_eq!(ld.queue(), QueueKind::Mem);
        assert_eq!(ld.mem.unwrap().size, 4);
        assert!(!ld.mem.unwrap().is_store);
        assert_eq!(ld.dst, Some(int(3)));

        let st = Inst::store(MemOp::StoreD, int(5), int(6), 0x3000);
        assert!(st.mem.unwrap().is_store);
        assert_eq!(st.dst, None);
        assert_eq!(st.sources().count(), 2);
    }

    #[test]
    fn branch_shape() {
        let b = Inst::branch(CtlOp::Bne, int(2), true, 0x400);
        assert!(b.is_cond_branch());
        assert_eq!(b.branch.unwrap().target, 0x400);
        assert!(b.branch.unwrap().taken);
        let j = Inst::jump(0x800);
        assert!(!j.is_cond_branch());
        assert!(j.op.is_control());
    }

    #[test]
    fn mom_equivalent_count_follows_stream_length() {
        let v = Inst::mom(MomOp::VaddW, stream(1), stream(2), stream(3), 11);
        assert_eq!(v.equivalent_count(), 11);
        let m = Inst::mmx(MmxOp::PaddW, simd(1), simd(2), simd(3));
        assert_eq!(m.equivalent_count(), 1);
        let s = Inst::int_rrr(IntOp::Add, int(1), int(2), int(3));
        assert_eq!(s.equivalent_count(), 1);
    }

    #[test]
    fn mom_load_picks_strided_opcode() {
        let unit = Inst::mom_load(stream(0), int(1), 0x1000, 8, 16);
        assert_eq!(unit.op, Op::Mom(MomOp::VloadQ));
        let strided = Inst::mom_load(stream(0), int(1), 0x1000, 768, 8);
        assert_eq!(strided.op, Op::Mom(MomOp::VloadStride));
        assert_eq!(strided.mem.unwrap().elem_addr(1), 0x1000 + 768);
    }

    #[test]
    #[should_panic(expected = "stream length")]
    fn zero_stream_length_rejected() {
        let _ = Inst::new(Op::Mom(MomOp::VaddB)).with_slen(0);
    }

    #[test]
    #[should_panic(expected = "stream length")]
    fn oversize_stream_length_rejected() {
        let _ = Inst::new(Op::Mom(MomOp::VaddB)).with_slen(17);
    }

    #[test]
    fn fp_op_shape() {
        let f = Inst::fp_rrr(FpOp::FMadd, fp(0), fp(1), fp(2));
        assert_eq!(f.kind(), OpKind::Fp);
        assert_eq!(f.queue(), QueueKind::Fp);
    }
}
