//! Differential proof for the decoupled run-ahead vector-fetch unit.
//!
//! Off-path: `decouple = false` and the structurally decoupled but
//! never-issuing `decouple = true, depth = 0` machine must both be
//! bitwise the baseline across the hierarchy × threads × ISA grid —
//! the same discipline the scheduler (`MEDSIM_SCHED=heap`) and
//! frontend (`MEDSIM_FRONTEND=inline`) reference paths get.
//!
//! On-path properties: the run-ahead distance never exceeds the
//! configured window depth, redirect flushes leave no stale replies
//! (flush accounting is consistent and runs stay deterministic), and
//! the quantum-parallel CMP schedule remains invisible with the unit
//! on (the park predicate must cover run-ahead issues).

use medsim::core::sim::{SimConfig, Simulation};
use medsim::core::{ExecMode, RunResult};
use medsim::mem::HierarchyKind;
use medsim::workloads::trace::SimdIsa;
use medsim::workloads::WorkloadSpec;

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        scale: 1.2e-5,
        seed: 77,
    }
}

/// The figure-5 grid (both ISAs, the paper's thread counts) plus the
/// hierarchy ablations, at test scale. Both sides of every comparison
/// pin `decouple` explicitly — the suite must prove the same identity
/// under `MEDSIM_DECOUPLE=1` (the CI knob axis re-runs it so).
fn grid() -> Vec<SimConfig> {
    let mut configs = Vec::new();
    for &isa in &SimdIsa::ALL {
        for &threads in &[1usize, 2, 4, 8] {
            configs.push(SimConfig::new(isa, threads).with_spec(spec()));
        }
        for &h in &HierarchyKind::ALL {
            configs.push(SimConfig::new(isa, 4).with_hierarchy(h).with_spec(spec()));
        }
    }
    configs
}

#[test]
fn knob_off_and_empty_window_are_bitwise_the_baseline() {
    let baseline: Vec<RunResult> = grid()
        .into_iter()
        .map(|c| Simulation::run(&c.with_decouple(false)))
        .collect();
    let depth0: Vec<RunResult> = grid()
        .into_iter()
        .map(|c| Simulation::run(&c.with_decouple(true).with_decouple_depth(0)))
        .collect();
    assert_eq!(
        depth0, baseline,
        "a decoupled unit with an empty run-ahead window must be bitwise the coupled machine"
    );
    for r in &baseline {
        assert_eq!(
            r.vfetch,
            Default::default(),
            "the off path must never wake the unit"
        );
    }
}

/// A stream-heavy configuration where the unit demonstrably works
/// ahead of execute.
fn mom(h: HierarchyKind) -> SimConfig {
    SimConfig::new(SimdIsa::Mom, 4)
        .with_hierarchy(h)
        .with_spec(spec())
}

#[test]
fn runahead_distance_is_bounded_by_the_window_depth() {
    for h in [HierarchyKind::Conventional, HierarchyKind::Decoupled] {
        for depth in [1usize, 2, 8] {
            let r = Simulation::run(&mom(h).with_decouple(true).with_decouple_depth(depth));
            assert!(
                r.vfetch.max_runahead <= depth as u64,
                "{h:?} depth {depth}: observed run-ahead {} exceeds the window",
                r.vfetch.max_runahead
            );
            assert!(
                r.vfetch.runahead_elems > 0,
                "{h:?} depth {depth}: a stream-heavy run must actually run ahead"
            );
            assert!(
                r.vfetch.drains > 0,
                "{h:?} depth {depth}: execute must drain buffered streams"
            );
        }
    }
}

#[test]
fn streamless_machines_are_untouched_by_the_knob() {
    // Only MOM stream loads decouple; an MMX machine has nothing to
    // run ahead of, so turning the unit on must be bitwise invisible.
    for h in [HierarchyKind::Conventional, HierarchyKind::Decoupled] {
        let cfg = SimConfig::new(SimdIsa::Mmx, 4)
            .with_hierarchy(h)
            .with_spec(spec());
        let off = Simulation::run(&cfg.clone().with_decouple(false));
        let on = Simulation::run(&cfg.with_decouple(true));
        assert_eq!(on, off, "{h:?}: MMX must be unaffected by MEDSIM_DECOUPLE");
    }
}

#[test]
fn redirect_flush_leaves_no_stale_replies() {
    // Flush accounting is self-consistent: discarded elements exist
    // exactly when flushes happened, and everything discarded was
    // previously issued early.
    let r = Simulation::run(&mom(HierarchyKind::Conventional).with_decouple(true));
    assert_eq!(
        r.vfetch.flushes == 0,
        r.vfetch.flushed_elems == 0,
        "flush event and element counters must agree: {:?}",
        r.vfetch
    );
    // No stale state survives a flush: the run is a pure function of
    // its config. A stale buffered reply (an element counted issued
    // but re-issued anyway, or vice versa) would desynchronize the
    // two executions' port and MSHR schedules.
    let again = Simulation::run(&mom(HierarchyKind::Conventional).with_decouple(true));
    assert_eq!(r, again, "decoupled runs must be deterministic");
}

#[test]
fn quantum_parallel_cmp_is_invisible_with_the_unit_on() {
    // The park predicate must cover run-ahead issues: under the
    // deferred quantum schedule an uncovered backend access trips the
    // debug assertion in the memory system, and any divergence shows
    // up as a result mismatch here.
    let cmp = mom(HierarchyKind::Conventional)
        .with_cores(2)
        .with_decouple(true);
    let serial = Simulation::run(&cmp.clone().with_exec(ExecMode::Serial));
    let parallel = Simulation::run(&cmp.clone().with_exec(ExecMode::Parallel));
    assert_eq!(
        parallel, serial,
        "quantum-parallel stepping must stay invisible with run-ahead on"
    );
    assert!(
        serial.vfetch.runahead_elems > 0,
        "the CMP leg must exercise the unit"
    );
}
