//! Cross-crate integration tests: conservation laws and qualitative
//! paper phenomena on small-scale full simulations.

use medsim::core::metrics::EipcFactor;
use medsim::core::sim::{SimConfig, Simulation};
use medsim::cpu::FetchPolicy;
use medsim::mem::HierarchyKind;
use medsim::workloads::trace::{InstStream, SimdIsa};
use medsim::workloads::{Benchmark, InstMix, WorkloadSpec};

fn tiny() -> WorkloadSpec {
    WorkloadSpec {
        scale: 2e-5,
        seed: 77,
    }
}

/// Total raw/equivalent instructions of the first eight workload slots.
fn suite_counts(spec: &WorkloadSpec, isa: SimdIsa) -> (u64, u64) {
    let mut raw = 0;
    let mut equiv = 0;
    for (slot, b) in Benchmark::PAPER_ORDER.iter().enumerate() {
        let mut mix = InstMix::default();
        let mut s = b.stream(slot, isa, spec);
        while let Some(i) = s.next_inst() {
            mix.record(&i);
        }
        raw += mix.raw;
        equiv += mix.total();
    }
    (raw, equiv)
}

#[test]
fn committed_instructions_conserve_trace_length_single_thread() {
    // With one context the §5.1 schedule runs exactly the eight list
    // entries back to back: everything fetched must retire, nothing more.
    let spec = tiny();
    for isa in SimdIsa::ALL {
        let (raw, equiv) = suite_counts(&spec, isa);
        let cfg = SimConfig::new(isa, 1).with_spec(spec);
        let r = Simulation::run(&cfg);
        assert_eq!(r.committed, raw, "{isa}: raw committed == trace length");
        assert_eq!(r.committed_equiv, equiv, "{isa}: equivalent committed");
    }
}

#[test]
fn mom_commits_fewer_raw_but_comparable_work() {
    let spec = tiny();
    let mmx = Simulation::run(&SimConfig::new(SimdIsa::Mmx, 1).with_spec(spec));
    let mom = Simulation::run(&SimConfig::new(SimdIsa::Mom, 1).with_spec(spec));
    assert!(mom.committed < mmx.committed, "MOM fuses instructions");
    assert!(
        mom.committed_equiv < mmx.committed_equiv,
        "Table 3: MOM needs fewer equivalents too"
    );
    assert!(
        mom.committed_equiv * 2 > mmx.committed_equiv,
        "but the same order of magnitude of work"
    );
}

#[test]
fn smt_scales_under_ideal_memory() {
    let spec = tiny();
    let mut prev = 0.0;
    for threads in [1usize, 2, 4] {
        let cfg = SimConfig::new(SimdIsa::Mmx, threads)
            .with_hierarchy(HierarchyKind::Ideal)
            .with_spec(spec);
        let ipc = Simulation::run(&cfg).equiv_ipc();
        assert!(ipc > prev, "{threads} threads: {ipc} vs {prev}");
        prev = ipc;
    }
}

#[test]
fn mom_beats_mmx_in_eipc_at_one_thread() {
    // The paper's figure 4: MOM's EIPC exceeds MMX's IPC at 1 thread.
    let spec = tiny();
    let factor = EipcFactor::compute(&spec);
    let mmx = Simulation::run(
        &SimConfig::new(SimdIsa::Mmx, 1)
            .with_hierarchy(HierarchyKind::Ideal)
            .with_spec(spec),
    );
    let mom = Simulation::run(
        &SimConfig::new(SimdIsa::Mom, 1)
            .with_hierarchy(HierarchyKind::Ideal)
            .with_spec(spec),
    );
    assert!(
        mom.figure_of_merit(&factor) > mmx.figure_of_merit(&factor),
        "MOM EIPC {} vs MMX IPC {}",
        mom.figure_of_merit(&factor),
        mmx.figure_of_merit(&factor)
    );
}

#[test]
fn real_memory_costs_performance() {
    let spec = tiny();
    let ideal = Simulation::run(
        &SimConfig::new(SimdIsa::Mmx, 2)
            .with_hierarchy(HierarchyKind::Ideal)
            .with_spec(spec),
    );
    let real = Simulation::run(
        &SimConfig::new(SimdIsa::Mmx, 2)
            .with_hierarchy(HierarchyKind::Conventional)
            .with_spec(spec),
    );
    assert!(real.equiv_ipc() < ideal.equiv_ipc());
    assert!(real.l1_hit_rate < 1.0);
    assert!(real.l1_avg_latency > 1.0);
}

#[test]
fn hit_rates_degrade_with_thread_count() {
    // Table 4's central phenomenon: inter-thread cache interference.
    let spec = tiny();
    let one = Simulation::run(&SimConfig::new(SimdIsa::Mmx, 1).with_spec(spec));
    let eight = Simulation::run(&SimConfig::new(SimdIsa::Mmx, 8).with_spec(spec));
    assert!(
        eight.l1_hit_rate < one.l1_hit_rate,
        "8-thread hit rate {} vs 1-thread {}",
        eight.l1_hit_rate,
        one.l1_hit_rate
    );
    assert!(eight.l1_avg_latency > one.l1_avg_latency);
}

#[test]
fn fetch_policies_all_run_and_complete_the_workload() {
    let spec = tiny();
    let mut merits = Vec::new();
    for policy in FetchPolicy::ALL {
        let cfg = SimConfig::new(SimdIsa::Mom, 4)
            .with_policy(policy)
            .with_spec(spec);
        let r = Simulation::run(&cfg);
        assert!(r.programs_completed >= 8, "{policy}: all programs ran");
        merits.push(r.equiv_ipc());
    }
    // Policies shuffle fetch order; throughput stays in a sane band.
    let max = merits.iter().cloned().fold(0.0, f64::max);
    let min = merits.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max / min < 1.5, "policy spread {merits:?}");
}

#[test]
fn decoupled_hierarchy_preserves_correctness_and_bypasses_l1() {
    let spec = tiny();
    let (raw, _) = suite_counts(&spec, SimdIsa::Mom);
    let cfg = SimConfig::new(SimdIsa::Mom, 1)
        .with_hierarchy(HierarchyKind::Decoupled)
        .with_spec(spec);
    let r = Simulation::run(&cfg);
    assert_eq!(r.committed, raw, "decoupled path retires the same trace");
}

#[test]
fn stream_length_clamp_preserves_work() {
    // Ablation plumbing: strip-mined streams commit the same equivalent
    // vector work plus the extra loop overhead.
    let spec = tiny();
    let full = Simulation::run(
        &SimConfig::new(SimdIsa::Mom, 1)
            .with_hierarchy(HierarchyKind::Ideal)
            .with_spec(spec),
    );
    let clamped = Simulation::run(
        &SimConfig::new(SimdIsa::Mom, 1)
            .with_hierarchy(HierarchyKind::Ideal)
            .with_spec(spec)
            .with_max_stream_len(4),
    );
    assert!(
        clamped.committed > full.committed,
        "strip-mining adds instructions"
    );
    assert!(clamped.committed_equiv >= full.committed_equiv);
    assert!(
        clamped.equiv_ipc() <= full.equiv_ipc() * 1.02,
        "shorter streams cannot beat full-length streams: {} vs {}",
        clamped.equiv_ipc(),
        full.equiv_ipc()
    );
}

#[test]
fn deterministic_across_identical_runs() {
    let spec = tiny();
    let cfg = SimConfig::new(SimdIsa::Mom, 4).with_spec(spec);
    let a = Simulation::run(&cfg);
    let b = Simulation::run(&cfg);
    assert_eq!(a, b);
}
