//! End-to-end trace-store test: simulation results are bit-identical
//! whether traces come from fresh synthesis, the in-memory packed
//! cache, or the persistent on-disk store — and a warm store serves a
//! whole grid without a single synthesis.

use medsim::core::runner::{run_grid_with, TraceCache};
use medsim::core::sim::{SimConfig, Simulation};
use medsim::trace::TraceStore;
use medsim::workloads::{trace::SimdIsa, WorkloadSpec};
use std::sync::atomic::{AtomicU64, Ordering};

fn unique_dir(tag: &str) -> std::path::PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("medsim-e2e-store-{tag}-{}-{n}", std::process::id()))
}

fn grid(spec: WorkloadSpec) -> Vec<SimConfig> {
    SimdIsa::ALL
        .iter()
        .flat_map(|&isa| [1usize, 2].map(|t| SimConfig::new(isa, t).with_spec(spec)))
        .collect()
}

#[test]
fn cold_and_warm_store_runs_are_bit_identical() {
    let spec = WorkloadSpec {
        scale: 1.5e-5,
        seed: 11,
    };
    let dir = unique_dir("grid");
    let configs = grid(spec);

    // Reference: no store, no memoization.
    let reference: Vec<_> = configs
        .iter()
        .map(|c| Simulation::run_cached(c, &TraceCache::disabled()))
        .collect();

    // Cold store (serial, so per-key counters are exact): synthesizes
    // and writes every trace back.
    let cold_cache = TraceCache::from_env().with_store(TraceStore::at(&dir));
    let cold = run_grid_with(&configs, 1, &cold_cache);
    assert_eq!(cold, reference, "cold store run matches uncached");
    let cold_stats = cold_cache.stats();
    assert_eq!(cold_stats.synthesized, 16, "8 slots x 2 ISAs synthesized");
    assert_eq!(cold_stats.store.writes, 16);

    // Warm store, fresh cache (models a fresh process), parallel this
    // time: zero synthesis regardless of worker interleaving.
    let warm_cache = TraceCache::from_env().with_store(TraceStore::at(&dir));
    let warm = run_grid_with(&configs, 2, &warm_cache);
    assert_eq!(warm, reference, "warm store run matches uncached");
    let warm_stats = warm_cache.stats();
    assert_eq!(warm_stats.synthesized, 0, "warm store serves everything");
    assert!(warm_stats.store.hits >= 16, "every trace came from disk");

    std::fs::remove_dir_all(&dir).ok();
}
