//! Warm sweeps are free: a result-cache-backed grid re-run is bitwise
//! identical to the cold run and performs **zero pipeline cycles** —
//! proven by the machine layer's process-global run counter, which is
//! why this binary holds exactly one test (integration tests in one
//! binary run concurrently and would race the counter).

use medsim::core::machine::{self, ExecMode};
use medsim::core::runner::{run_grid_resulted, TraceCache};
use medsim::core::sim::SimConfig;
use medsim::core::ResultCache;
use medsim::mem::HierarchyKind;
use medsim::workloads::{trace::SimdIsa, WorkloadSpec};

#[test]
fn warm_grid_is_bitwise_identical_with_zero_pipeline_cycles() {
    let spec = WorkloadSpec {
        scale: 1.0e-5,
        seed: 4242,
    };
    let configs: Vec<SimConfig> = [
        HierarchyKind::Ideal,
        HierarchyKind::Conventional,
        HierarchyKind::Decoupled,
    ]
    .iter()
    .flat_map(|&h| {
        SimdIsa::ALL.iter().flat_map(move |&isa| {
            [1usize, 2].map(move |t| {
                SimConfig::new(isa, t)
                    .with_exec(ExecMode::Serial)
                    .with_hierarchy(h)
                    .with_spec(spec)
            })
        })
    })
    .collect();
    assert_eq!(
        configs.len(),
        12,
        "3 hierarchies x 2 ISAs x 2 thread counts"
    );

    let dir = std::env::temp_dir().join(format!("medsim-warm-grid-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let traces = TraceCache::from_env();

    // Cold: every point simulates and writes the store back.
    let cold_cache = ResultCache::at(&dir);
    let before_cold = machine::runs_executed();
    let cold = run_grid_resulted(&configs, 2, &traces, &cold_cache);
    assert_eq!(
        machine::runs_executed() - before_cold,
        12,
        "cold grid ran every pipeline"
    );
    let cold_stats = cold_cache.stats();
    assert_eq!(cold_stats.writes, 12, "every cold result persisted");

    // Warm: a fresh cache (fresh process, same directory) serves the
    // whole grid from disk.
    let warm_cache = ResultCache::at(&dir);
    let before_warm = machine::runs_executed();
    let warm = run_grid_resulted(&configs, 2, &traces, &warm_cache);
    assert_eq!(warm, cold, "warm grid is bitwise identical");
    for (w, c) in warm.iter().zip(&cold) {
        assert_eq!(w.sched, c.sched, "advisory counters round-trip too");
    }
    let warm_stats = warm_cache.stats();
    assert_eq!(warm_stats.hits, 12, "every point served from the store");
    assert_eq!(warm_stats.fallbacks(), 0, "no fallback on a warm store");
    assert_eq!(
        machine::runs_executed() - before_warm,
        0,
        "warm grid performed zero pipeline cycles"
    );

    std::fs::remove_dir_all(&dir).ok();
}
