//! Differential proof for the CMP machine layer.
//!
//! 1. `MEDSIM_EXEC=parallel` (phase-A barrier stepping on budgeted
//!    workers) must be **bitwise identical** to the `serial` reference
//!    schedule over cores {1, 2, 4} × thread counts × every cache
//!    hierarchy — including with the worker budget partially granted
//!    (cores chunked onto fewer workers) and fully starved (serial
//!    fallback).
//! 2. The 1-core machine must be **stat-for-stat identical** to the
//!    pre-refactor single-pipeline run loop on the figure-5 grid: the
//!    reference implementation below is the old `Simulation` body,
//!    verbatim, driving one `Cpu` directly.
//! 3. The machine-level idle fast-forward (the whole chip jumps to the
//!    earliest per-core wakeup) must be stats-invisible.
//! 4. The quantum schedule (`MEDSIM_QUANTUM` / `SimConfig::quantum`:
//!    cores step multiple cycles between shared-backend
//!    synchronizations) must be bitwise identical to serial for forced
//!    quanta of 1 (the degenerate lockstep), a mid value, and a value
//!    far past the derived lookahead bound — and the *derived* quantum
//!    must never exceed the hierarchy's minimum cross-core interaction
//!    latency for any memory configuration.

use medsim::core::frontend::{Frontend, JobBudget};
use medsim::core::machine::{self, ExecMode, PROGRAMS_TO_COMPLETE};
use medsim::core::runner::TraceCache;
use medsim::core::sim::{SimConfig, Simulation};
use medsim::core::RunResult;
use medsim::cpu::{Cpu, CpuConfig};
use medsim::mem::{HierarchyKind, MemConfig, MemSystem};
use medsim::workloads::trace::SimdIsa;
use medsim::workloads::WorkloadSpec;

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        scale: 1.0e-5,
        seed: 4242,
    }
}

/// Cores × threads-per-core × hierarchy, alternating the ISA so both
/// vectorizations cover every structural axis.
fn cmp_grid() -> Vec<SimConfig> {
    let mut configs = Vec::new();
    for &cores in &[1usize, 2, 4] {
        for &threads in &[1usize, 2] {
            for (i, &h) in HierarchyKind::ALL.iter().enumerate() {
                let isa = if (cores + threads + i) % 2 == 0 {
                    SimdIsa::Mmx
                } else {
                    SimdIsa::Mom
                };
                configs.push(
                    SimConfig::new(isa, threads)
                        .with_cores(cores)
                        .with_hierarchy(h)
                        .with_spec(spec()),
                );
            }
        }
    }
    configs
}

#[test]
fn parallel_stepping_is_bitwise_identical_to_serial() {
    let cache = TraceCache::from_env();
    for config in cmp_grid() {
        let serial = Simulation::run_fronted(
            &config.clone().with_exec(ExecMode::Serial),
            &cache,
            &Frontend::inline(),
        );

        // Roomy budget: every core beyond the first gets a real
        // phase-A worker, and the sharded frontend gets producers too.
        let roomy = JobBudget::new(16);
        let got = Simulation::run_fronted(
            &config.clone().with_exec(ExecMode::Parallel),
            &cache,
            &Frontend::sharded_with(&roomy),
        );
        assert_eq!(
            got, serial,
            "parallel != serial at cores={} threads={} {:?} {:?}",
            config.cores, config.threads, config.hierarchy, config.isa
        );
        assert_eq!(roomy.available(), 16, "all permits returned");

        // One permit: several cores chunk onto a single worker while
        // the coordinator takes the rest — a different (but still
        // deterministic) phase-A partition.
        let tight = JobBudget::new(1);
        let got = Simulation::run_fronted(
            &config.clone().with_exec(ExecMode::Parallel),
            &cache,
            &Frontend::sharded_with(&tight),
        );
        assert_eq!(
            got, serial,
            "single-worker parallel diverges at cores={} threads={} {:?}",
            config.cores, config.threads, config.hierarchy
        );

        // Starved budget: parallel requested, serial fallback taken.
        let dry = JobBudget::new(0);
        let got = Simulation::run_fronted(
            &config.clone().with_exec(ExecMode::Parallel),
            &cache,
            &Frontend::sharded_with(&dry),
        );
        assert_eq!(
            got, serial,
            "dry-budget parallel diverges at cores={} threads={} {:?}",
            config.cores, config.threads, config.hierarchy
        );
    }
}

#[test]
fn forced_quanta_are_bitwise_identical_to_serial() {
    // K = 1 degenerates to the per-cycle barrier schedule; K = 3 sits
    // below every hierarchy's derived bound, exercising mixed
    // quantum/lockstep rounds. Both must be invisible in every
    // statistic across the whole structural grid.
    let cache = TraceCache::from_env();
    for config in cmp_grid() {
        let serial = Simulation::run_fronted(
            &config.clone().with_exec(ExecMode::Serial),
            &cache,
            &Frontend::inline(),
        );
        for k in [1u64, 3] {
            let budget = JobBudget::new(16);
            let got = Simulation::run_fronted(
                &config.clone().with_exec(ExecMode::Parallel).with_quantum(k),
                &cache,
                &Frontend::sharded_with(&budget),
            );
            assert_eq!(
                got, serial,
                "quantum {k} diverges at cores={} threads={} {:?} {:?}",
                config.cores, config.threads, config.hierarchy, config.isa
            );
        }
    }
}

#[test]
fn oversized_quantum_is_bitwise_identical_to_serial() {
    // Exactness never rests on K staying within the derived lookahead:
    // every backend access needing a reply parks its core, so a quantum
    // far past the bound must still merge to the serial statistics —
    // it just parks more.
    let cache = TraceCache::from_env();
    for &threads in &[1usize, 2] {
        let config = SimConfig::new(SimdIsa::Mom, threads)
            .with_cores(4)
            .with_hierarchy(HierarchyKind::Conventional)
            .with_spec(spec());
        let serial = Simulation::run_fronted(
            &config.clone().with_exec(ExecMode::Serial),
            &cache,
            &Frontend::inline(),
        );
        let budget = JobBudget::new(16);
        let got = Simulation::run_fronted(
            &config
                .clone()
                .with_exec(ExecMode::Parallel)
                .with_quantum(64),
            &cache,
            &Frontend::sharded_with(&budget),
        );
        assert_eq!(got, serial, "quantum 64 diverges at {threads} threads");
    }
}

#[test]
fn derived_quantum_never_exceeds_the_cross_core_interaction_latency() {
    // Property sweep: for every hierarchy and a range of L2 latencies,
    // the quantum the machine derives (no override) is bounded by the
    // minimum cross-core interaction latency — an L2 hit — and is
    // always at least the 1-cycle degenerate schedule.
    for &h in HierarchyKind::ALL.iter() {
        for l2_latency in 1..=40u64 {
            let mut mem = MemConfig::paper_with(h);
            mem.l2_latency = l2_latency;
            let mut config = SimConfig::new(SimdIsa::Mmx, 1).with_mem(mem.clone());
            config.quantum = None;
            let k = machine::quantum_cycles(&config, &mem);
            assert!(
                (1..=l2_latency.max(1)).contains(&k),
                "{h:?} l2_latency={l2_latency}: derived quantum {k} breaks the bound"
            );
        }
    }
}

/// The pre-refactor `Simulation::run_fronted` body, verbatim: one
/// `Cpu`, `cycle()` with its internal fast-forward, and the §5.1
/// program-list refill loop — no machine layer anywhere.
fn pre_refactor_reference(config: &SimConfig, cache: &TraceCache) -> RunResult {
    let mem_config = MemConfig::paper_with(config.hierarchy);
    let cpu_config = CpuConfig::paper(config.threads, config.isa)
        .with_policy(config.fetch_policy)
        .with_scheduler(config.scheduler)
        .with_stream_batch(config.stream_batch);
    let mut cpu = Cpu::new(cpu_config, MemSystem::new(mem_config));

    let source_for = |slot: usize| cache.source_for(&config.spec, slot, config.isa);

    let n = config.threads;
    let mut ctx_slot: Vec<usize> = (0..n).collect();
    let mut next_slot = n;
    let mut completed = [false; PROGRAMS_TO_COMPLETE];
    for tid in 0..n {
        cpu.attach_source(tid, source_for(tid));
    }

    let all_done = |c: &[bool; PROGRAMS_TO_COMPLETE]| c.iter().all(|&x| x);
    loop {
        cpu.cycle();
        for (tid, slot) in ctx_slot.iter_mut().enumerate() {
            if !cpu.thread_idle(tid) {
                continue;
            }
            if *slot < PROGRAMS_TO_COMPLETE {
                completed[*slot] = true;
            }
            cpu.note_program_completed(tid);
            if all_done(&completed) {
                continue;
            }
            cpu.attach_source(tid, source_for(next_slot));
            *slot = next_slot;
            next_slot += 1;
        }
        if all_done(&completed) {
            break;
        }
        assert!(cpu.now() < config.max_cycles, "reference deadlocked");
    }
    RunResult::collect(config, &cpu)
}

#[test]
fn one_core_machine_matches_the_pre_refactor_pipeline_on_the_fig5_grid() {
    // The figure-5 grid: ideal + conventional hierarchies, both ISAs,
    // the paper's four thread counts — all at one core, both stepping
    // modes. Every statistic must match the direct single-pipeline
    // loop exactly.
    let cache = TraceCache::from_env();
    for &h in &[HierarchyKind::Ideal, HierarchyKind::Conventional] {
        for &isa in &SimdIsa::ALL {
            for &threads in &[1usize, 2, 4, 8] {
                let config = SimConfig::new(isa, threads)
                    .with_cores(1)
                    .with_hierarchy(h)
                    .with_spec(spec());
                let want = pre_refactor_reference(&config, &cache);
                for exec in [ExecMode::Serial, ExecMode::Parallel] {
                    let got = Simulation::run_fronted(
                        &config.clone().with_exec(exec),
                        &cache,
                        &Frontend::inline(),
                    );
                    assert_eq!(
                        got, want,
                        "1-core machine ({exec}) diverges from the pre-refactor \
                         pipeline at {isa:?} {h:?} {threads} threads"
                    );
                }
            }
        }
    }
}

#[test]
fn machine_fast_forward_is_invisible() {
    // The conventional hierarchy at a small thread count has long DRAM
    // gaps — plenty of chip-idle cycles to jump. Disabling the
    // machine-level fast-forward must not change a single statistic.
    let cache = TraceCache::from_env();
    for &cores in &[2usize, 4] {
        let config = SimConfig::new(SimdIsa::Mmx, 1)
            .with_cores(cores)
            .with_exec(ExecMode::Serial)
            .with_spec(spec());
        let fast = machine::run_with(&config, &cache, &Frontend::inline(), true);
        let slow = machine::run_with(&config, &cache, &Frontend::inline(), false);
        assert_eq!(fast, slow, "machine fast-forward visible at {cores} cores");
        // The parallel schedule with the fast-forward off must agree too.
        let budget = JobBudget::new(4);
        let par = machine::run_with(
            &config.clone().with_exec(ExecMode::Parallel),
            &cache,
            &Frontend::sharded_with(&budget),
            false,
        );
        assert_eq!(par, slow, "parallel no-ff diverges at {cores} cores");
    }
}

#[test]
#[should_panic(expected = "model deadlock")]
fn parallel_max_cycles_assert_panics_instead_of_hanging() {
    // The coordinator's model-deadlock diagnostic must unwind cleanly
    // through the barrier schedule: the abort guard releases the
    // phase-A workers and detaches the ring consumers, so the panic
    // reaches the harness instead of deadlocking the scope join.
    let cache = TraceCache::from_env();
    let mut config = SimConfig::new(SimdIsa::Mmx, 1)
        .with_cores(2)
        .with_exec(ExecMode::Parallel)
        .with_spec(spec());
    config.max_cycles = 10;
    let budget = JobBudget::new(2);
    let _ = Simulation::run_fronted(&config, &cache, &Frontend::sharded_with(&budget));
}

/// Inner half of `abort_unwind_never_wedges_the_machine`: loop the
/// model-deadlock repro many times in-process. Before the machine's
/// round barrier grew a cancel path this hung roughly once per hundred
/// iterations: a phase-A worker released from the round-complete gate
/// could observe the abort flag *before* re-parking, exit without
/// arriving at the gate the unwinding abort guard's counted
/// `Barrier::wait` was pairing against, and strand the coordinator —
/// which in turn never detached the ring consumers, leaving a producer
/// parked on a full ring. 60 rounds give better than
/// 1 - 0.99^60 ≈ 45% per run — and the outer test's process boundary
/// turns any recurrence into a clean timeout instead of a wedged test
/// binary. `#[ignore]`d so plain `cargo test` never runs it directly;
/// only the subprocess wrapper does.
#[test]
#[ignore = "spawned by abort_unwind_never_wedges_the_machine"]
fn repro_parallel_max_cycles_panic_loop() {
    // The repro panics by design on every round; silence the default
    // hook so the subprocess log stays readable.
    std::panic::set_hook(Box::new(|_| {}));
    let cache = TraceCache::from_env();
    for round in 0..60 {
        let mut config = SimConfig::new(SimdIsa::Mmx, 1)
            .with_cores(2)
            .with_exec(ExecMode::Parallel)
            .with_spec(spec());
        config.max_cycles = 10;
        let budget = JobBudget::new(2);
        let outcome = std::panic::catch_unwind(|| {
            let _ = Simulation::run_fronted(&config, &cache, &Frontend::sharded_with(&budget));
        });
        assert!(
            outcome.is_err(),
            "round {round}: expected model-deadlock panic"
        );
    }
    println!("ABORT_REPRO_ROUNDS_OK");
}

#[test]
fn abort_unwind_never_wedges_the_machine() {
    // Regression for the ~1% hang: run the looped panic repro in a
    // child process with a hard deadline. A worker that exits without
    // pairing the aborting coordinator's barrier wait wedges the
    // child's scope join forever; the deadline turns that into a test
    // failure here instead of a hung CI job.
    let exe = std::env::current_exe().expect("test binary path");
    let mut child = std::process::Command::new(exe)
        .args([
            "--exact",
            "repro_parallel_max_cycles_panic_loop",
            "--ignored",
            "--nocapture",
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn repro child");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(240);
    loop {
        match child.try_wait().expect("poll repro child") {
            Some(status) => {
                assert!(status.success(), "repro child failed: {status}");
                break;
            }
            None if std::time::Instant::now() >= deadline => {
                let _ = child.kill();
                let _ = child.wait();
                panic!("abort-unwind hang: repro child exceeded deadline");
            }
            None => std::thread::sleep(std::time::Duration::from_millis(100)),
        }
    }
}

#[test]
fn cmp_shares_one_l2_backend() {
    // Every core of a CMP reports the same (chip-wide) L2 and DRAM
    // statistics, and the machine completes the same §5.1 workload.
    let config = SimConfig::new(SimdIsa::Mom, 2)
        .with_cores(4)
        .with_exec(ExecMode::Serial)
        .with_spec(spec());
    let r = Simulation::run(&config);
    assert_eq!(r.cores, 4);
    assert!(r.programs_completed >= 8, "{}", r.programs_completed);
    // A 4-core × 2-thread machine runs 8 contexts: at least the first
    // eight list entries were spread across them at start.
    assert!(r.committed > 0 && r.cycles > 0);
}

/// Regression: a store miss write-allocates into L1 — evicting the
/// set's LRU way — so a store issued earlier in the same cycle can
/// turn a probed-resident load into a real backend miss *after* the
/// park predicate cleared the cycle. The predicate must park on a
/// store-miss/load set collision. The 1e-5 grid above never hits the
/// collision; this config (the bench's CMP run at a 10x scale) does
/// within the first few thousand cycles, and under `debug_assertions`
/// the deferred-mode check in `MemSystem::with_backend` turns any
/// future regression into a panic rather than a silent divergence.
#[test]
fn store_allocate_eviction_cannot_slip_past_the_park_predicate() {
    let spec = WorkloadSpec {
        scale: 1.0e-4,
        seed: 0x5eed_2001,
    };
    let config = SimConfig::new(SimdIsa::Mom, 2)
        .with_cores(4)
        .with_hierarchy(HierarchyKind::Conventional)
        .with_spec(spec);
    let cache = TraceCache::from_env();
    let serial = Simulation::run_fronted(
        &config.clone().with_exec(ExecMode::Serial),
        &cache,
        &Frontend::inline(),
    );
    let roomy = JobBudget::new(8);
    let got = Simulation::run_fronted(
        &config.clone().with_exec(ExecMode::Parallel),
        &cache,
        &Frontend::sharded_with(&roomy),
    );
    assert_eq!(got, serial, "quantum schedule diverged from serial");
}
