//! End-to-end result-store proofs.
//!
//! 1. A warm result cache round-trips a simulation bitwise — including
//!    the advisory scheduling counters that sit outside `RunResult`
//!    equality.
//! 2. Damaged or stale store files (truncation, flipped payload bytes,
//!    wrong magic, bumped format version) fall back to simulation with
//!    per-reason counters and self-heal on the next write-back.
//! 3. Hash sensitivity: flipping *any* identity knob — every
//!    `SimConfig` field, the mem-override contents, the process-frozen
//!    wheel-slots horizon, the workload content checksum, any packed
//!    trace byte — changes the `ResultKey`; re-hashing is stable.
//! 4. Multi-process safety: several processes hammering one store
//!    directory never publish a torn file, never leave temp files, and
//!    a second wave is served entirely from disk.

use medsim::core::machine::ExecMode;
use medsim::core::resultstore::workload_checksum;
use medsim::core::runner::{run_grid_resulted, TraceCache};
use medsim::core::sim::{SimConfig, Simulation};
use medsim::core::{ResultCache, ResultKey, ResultStore};
use medsim::cpu::{FetchPolicy, SchedulerKind};
use medsim::isa::prelude::*;
use medsim::mem::{HierarchyKind, MemConfig};
use medsim::trace::PackedTrace;
use medsim::workloads::{trace::SimdIsa, WorkloadSpec};
use std::sync::atomic::{AtomicU64, Ordering};

fn unique_dir(tag: &str) -> std::path::PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "medsim-result-e2e-{tag}-{}-{n}",
        std::process::id()
    ))
}

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        scale: 1.0e-5,
        seed: 31,
    }
}

fn small_config() -> SimConfig {
    SimConfig::new(SimdIsa::Mmx, 1)
        .with_exec(ExecMode::Serial)
        .with_spec(spec())
}

#[test]
fn warm_cache_round_trips_bitwise_including_advisory_counters() {
    let dir = unique_dir("roundtrip");
    let traces = TraceCache::from_env();
    let config = small_config();

    let cold_cache = ResultCache::at(&dir);
    let cold = Simulation::run_resulted(&config, &traces, &cold_cache);
    let cold_stats = cold_cache.stats();
    assert_eq!(cold_stats.misses, 1, "cold lookup missed");
    assert_eq!(cold_stats.writes, 1, "cold run wrote back");

    // Fresh cache over the same directory: models a fresh process.
    let warm_cache = ResultCache::at(&dir);
    let warm = Simulation::run_resulted(&config, &traces, &warm_cache);
    assert_eq!(warm, cold, "warm hit is bitwise identical");
    assert_eq!(warm.sched, cold.sched, "advisory counters survive disk");
    let warm_stats = warm_cache.stats();
    assert_eq!(warm_stats.hits, 1);
    assert_eq!(warm_stats.fallbacks(), 0, "no fallback on a warm store");
    assert_eq!(warm_stats.writes, 0, "write-once: nothing rewritten");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn damaged_and_stale_files_fall_back_and_self_heal() {
    let dir = unique_dir("heal");
    let traces = TraceCache::from_env();
    let config = small_config();

    let cache = ResultCache::at(&dir);
    let cold = Simulation::run_resulted(&config, &traces, &cache);
    let key = ResultKey::of(&config, &traces);
    let path = ResultStore::at(&dir).path_for(&key);
    let good = std::fs::read(&path).expect("stored file readable");

    // Truncation: shorter than the header.
    std::fs::write(&path, &good[..10]).expect("truncate");
    let store = ResultStore::at(&dir);
    assert!(store.load(&key).is_none(), "truncated file must not load");
    assert_eq!(store.stats().corrupt, 1);
    assert!(!path.exists(), "self-heal removed the truncated file");

    // Flipped payload byte: checksum mismatch.
    let mut flipped = good.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x01;
    std::fs::write(&path, &flipped).expect("flip");
    let store = ResultStore::at(&dir);
    assert!(
        store.load(&key).is_none(),
        "checksum mismatch must not load"
    );
    assert_eq!(store.stats().corrupt, 1);
    assert!(!path.exists(), "self-heal removed the corrupt file");

    // Wrong magic.
    let mut bad_magic = good.clone();
    bad_magic[0] ^= 0xFF;
    std::fs::write(&path, &bad_magic).expect("bad magic");
    let store = ResultStore::at(&dir);
    assert!(store.load(&key).is_none(), "foreign file must not load");
    assert_eq!(store.stats().corrupt, 1);

    // Bumped format version (a file from a future build): counted
    // separately from corruption.
    let mut future = good.clone();
    future[4] = future[4].wrapping_add(1);
    std::fs::write(&path, &future).expect("version bump");
    let store = ResultStore::at(&dir);
    assert!(store.load(&key).is_none(), "version mismatch must not load");
    let stats = store.stats();
    assert_eq!(stats.version_mismatch, 1);
    assert_eq!(stats.corrupt, 0);
    assert!(!path.exists(), "self-heal removed the stale file");

    // End to end: with the file gone, the read-through layer simulates
    // and writes the store back — healed, and bitwise equal.
    let heal_cache = ResultCache::at(&dir);
    let healed = Simulation::run_resulted(&config, &traces, &heal_cache);
    assert_eq!(healed, cold, "healed run matches the original");
    assert_eq!(heal_cache.stats().writes, 1, "heal rewrote the file");
    let reread = ResultStore::at(&dir);
    assert_eq!(reread.load(&key).expect("healed file loads"), cold);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_identity_knob_perturbs_the_key() {
    const WHEEL: usize = 1024;
    const WORKLOAD: u64 = 0xABCD_EF01_2345_6789;
    let base = SimConfig::new(SimdIsa::Mmx, 2)
        .with_cores(1)
        .with_exec(ExecMode::Serial)
        .with_hierarchy(HierarchyKind::Conventional)
        .with_policy(FetchPolicy::RoundRobin)
        .with_scheduler(SchedulerKind::Wheel)
        .with_spec(spec());
    let key_of = |c: &SimConfig| ResultKey::with_parts(c, WHEEL, WORKLOAD);
    let base_key = key_of(&base);
    assert_eq!(base_key, key_of(&base.clone()), "re-hash is stable");

    // One mutation per SimConfig field (every EnvKnobs-backed knob —
    // scheduler, stream_batch, quantum, decouple, decouple_depth —
    // included; wheel_slots, the one knob SimConfig does not carry, is
    // covered below via the explicit parameter).
    type KnobFlip = (&'static str, Box<dyn Fn(&mut SimConfig)>);
    let mutations: Vec<KnobFlip> = vec![
        ("isa", Box::new(|c| c.isa = SimdIsa::Mom)),
        ("threads", Box::new(|c| c.threads = 4)),
        ("cores", Box::new(|c| c.cores = 2)),
        ("exec", Box::new(|c| c.exec = ExecMode::Parallel)),
        (
            "hierarchy",
            Box::new(|c| c.hierarchy = HierarchyKind::Decoupled),
        ),
        (
            "fetch_policy",
            Box::new(|c| c.fetch_policy = FetchPolicy::ICount),
        ),
        ("spec.scale", Box::new(|c| c.spec.scale *= 2.0)),
        ("spec.seed", Box::new(|c| c.spec.seed += 1)),
        (
            "max_cycles",
            Box::new(|c| c.max_cycles = c.max_cycles.wrapping_add(1)),
        ),
        (
            "mem_override",
            Box::new(|c| c.mem_override = Some(MemConfig::paper_with(c.hierarchy))),
        ),
        (
            "max_stream_len",
            Box::new(|c| c.max_stream_len = c.max_stream_len.wrapping_sub(1)),
        ),
        ("scheduler", Box::new(|c| c.scheduler = SchedulerKind::Heap)),
        (
            "stream_batch",
            Box::new(|c| c.stream_batch = !c.stream_batch),
        ),
        ("decouple", Box::new(|c| c.decouple = !c.decouple)),
        (
            "decouple_depth",
            Box::new(|c| c.decouple_depth = c.decouple_depth.wrapping_add(1)),
        ),
        ("quantum", Box::new(|c| c.quantum = Some(7))),
    ];
    let mut keys = vec![("base", base_key)];
    for (label, mutate) in &mutations {
        let mut c = base.clone();
        mutate(&mut c);
        let k = key_of(&c);
        assert_ne!(k, base_key, "{label} must perturb the key");
        assert_eq!(k, key_of(&c.clone()), "{label} re-hash is stable");
        keys.push((label, k));
    }
    // Quantum *value* matters too, not just its presence.
    let mut q8 = base.clone();
    q8.quantum = Some(8);
    let mut q9 = base.clone();
    q9.quantum = Some(9);
    assert_ne!(key_of(&q8), key_of(&q9), "quantum value participates");

    // Knobs inside an ablation override participate individually.
    let mut with_mem = base.clone();
    with_mem.mem_override = Some(MemConfig::paper_with(with_mem.hierarchy));
    let mem_key = key_of(&with_mem);
    for (label, tweak) in [
        (
            "override.l1_latency",
            Box::new(|m: &mut MemConfig| m.l1_latency += 1) as Box<dyn Fn(&mut MemConfig)>,
        ),
        (
            "override.l1d.size_bytes",
            Box::new(|m: &mut MemConfig| m.l1d.size_bytes /= 2),
        ),
        (
            "override.dram.row_bytes",
            Box::new(|m: &mut MemConfig| m.dram.row_bytes *= 2),
        ),
        ("override.mshrs", Box::new(|m: &mut MemConfig| m.mshrs += 1)),
    ] {
        let mut c = with_mem.clone();
        tweak(c.mem_override.as_mut().expect("override present"));
        assert_ne!(key_of(&c), mem_key, "{label} must perturb the key");
    }

    // The two non-SimConfig identity inputs.
    assert_ne!(
        ResultKey::with_parts(&base, WHEEL + 1, WORKLOAD),
        base_key,
        "wheel_slots participates"
    );
    assert_ne!(
        ResultKey::with_parts(&base, WHEEL, WORKLOAD ^ 1),
        base_key,
        "workload checksum participates"
    );

    // Every key produced above is pairwise distinct (no accidental
    // collisions among single-knob flips).
    for (i, (la, ka)) in keys.iter().enumerate() {
        for (lb, kb) in &keys[i + 1..] {
            assert_ne!(ka, kb, "{la} and {lb} collided");
        }
    }
}

#[test]
fn trace_bytes_feed_the_workload_checksum() {
    // PackedTrace::content_checksum is what TraceCache::trace_checksum
    // draws per slot: any instruction change must move it; re-packing
    // identical content must not.
    let insts: Vec<Inst> = (0..64)
        .map(|i| Inst::int_rri(IntOp::Addi, int((i % 28) as u8 + 1), int(0), i).at(4 * i as u64))
        .collect();
    let a = PackedTrace::pack(insts.clone());
    let b = PackedTrace::pack(insts.clone());
    assert_eq!(
        a.content_checksum(),
        b.content_checksum(),
        "identical content hashes identically"
    );
    let mut tweaked = insts;
    tweaked[17] = Inst::int_rri(IntOp::Addi, int(18), int(0), 9999).at(17 * 4);
    let c = PackedTrace::pack(tweaked);
    assert_ne!(
        a.content_checksum(),
        c.content_checksum(),
        "one changed instruction moves the checksum"
    );

    // And the combined workload checksum is what keys draw: flipping
    // the spec flips it (full sensitivity is proven per-knob above).
    let traces = TraceCache::disabled();
    let base = small_config();
    let mut reseeded = base.clone();
    reseeded.spec.seed += 1;
    assert_ne!(
        workload_checksum(&base, &traces),
        workload_checksum(&reseeded, &traces)
    );
}

/// The grid one stress-test process runs: 2 ISAs × {1, 2} threads.
fn stress_grid() -> Vec<SimConfig> {
    SimdIsa::ALL
        .iter()
        .flat_map(|&isa| {
            [1usize, 2].map(|t| {
                SimConfig::new(isa, t)
                    .with_exec(ExecMode::Serial)
                    .with_spec(spec())
            })
        })
        .collect()
}

/// Inner half of `multi_process_stress_shares_one_store_dir`: run the
/// small grid against the store directory named by
/// `MEDSIM_RESULT_STRESS_DIR` and report what the cache did.
/// `#[ignore]`d so plain `cargo test` never runs it directly.
#[test]
#[ignore = "spawned by multi_process_stress_shares_one_store_dir"]
fn result_store_hammer() {
    let dir = std::env::var("MEDSIM_RESULT_STRESS_DIR").expect("stress dir env var");
    let traces = TraceCache::from_env();
    let results = ResultCache::at(&dir);
    let configs = stress_grid();
    let outcomes = run_grid_resulted(&configs, 2, &traces, &results);
    assert_eq!(outcomes.len(), configs.len());
    let stats = results.stats();
    println!("HAMMER hits={} simulated={}", stats.hits, stats.fallbacks());
}

#[test]
fn multi_process_stress_shares_one_store_dir() {
    const PROCS: usize = 4;
    let dir = unique_dir("stress");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let exe = std::env::current_exe().expect("test binary path");
    let spawn = || {
        std::process::Command::new(&exe)
            .args(["--exact", "result_store_hammer", "--ignored", "--nocapture"])
            .env("MEDSIM_RESULT_STRESS_DIR", &dir)
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn hammer child")
    };
    let parse_marker = |stdout: &str| -> (u64, u64) {
        // With --nocapture the marker can share a line with the
        // harness's own "test ... " prefix; slice from the marker.
        let line = stdout
            .lines()
            .find_map(|l| l.find("HAMMER ").map(|at| &l[at..]))
            .unwrap_or_else(|| panic!("no HAMMER marker in child output: {stdout:?}"));
        let field = |key: &str| {
            line.split_whitespace()
                .find_map(|w| w.strip_prefix(key))
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| panic!("bad HAMMER marker: {line:?}"))
        };
        (field("hits="), field("simulated="))
    };

    // Wave 1: PROCS concurrent processes race on a cold directory.
    let children: Vec<_> = (0..PROCS).map(|_| spawn()).collect();
    let (mut hits, mut simulated) = (0u64, 0u64);
    for child in children {
        let out = child.wait_with_output().expect("child exits");
        assert!(out.status.success(), "hammer child failed: {}", out.status);
        let (h, s) = parse_marker(&String::from_utf8_lossy(&out.stdout));
        hits += h;
        simulated += s;
    }
    let grid = stress_grid().len() as u64;
    let total = PROCS as u64 * grid;
    assert_eq!(hits + simulated, total, "every grid point hit or simulated");
    assert!(
        simulated >= grid,
        "each distinct key simulated at least once"
    );

    // The store holds exactly one valid file per distinct key, no torn
    // files, no abandoned temp files.
    let store = ResultStore::at(&dir);
    assert_eq!(
        store.validate_all(),
        (grid as usize, 0),
        "one valid file per key, zero invalid"
    );
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .expect("dir")
        .map(|e| e.expect("entry").file_name().into_string().expect("utf8"))
        .filter(|n| n.starts_with(".tmp-"))
        .collect();
    assert!(
        leftovers.is_empty(),
        "temp files left behind: {leftovers:?}"
    );

    // Wave 2: a fresh process is served entirely from disk.
    let out = spawn().wait_with_output().expect("wave-2 child exits");
    assert!(out.status.success(), "wave-2 child failed: {}", out.status);
    let (h2, s2) = parse_marker(&String::from_utf8_lossy(&out.stdout));
    assert_eq!((h2, s2), (grid, 0), "wave 2 is all warm hits");

    std::fs::remove_dir_all(&dir).ok();
}
