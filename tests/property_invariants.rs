//! Property-based integration tests over the full stack: random
//! programs through the pipeline, random workload specs through the
//! suite, and cross-ISA semantic equivalences.

use medsim::isa::prelude::*;
use medsim::isa::semantics::{exec_mmx_rr, exec_mom_vv, StreamValue};
use medsim::workloads::trace::VecStream;
use medsim::{cpu::Cpu, cpu::CpuConfig, mem::MemConfig, mem::MemSystem};
use proptest::prelude::*;

/// Build a random but well-formed straight-line program.
fn arb_program(max_len: usize) -> impl Strategy<Value = Vec<Inst>> {
    let inst = (0u8..5, 1u8..9, 1u8..9, 1u8..9, 0u64..4096).prop_map(
        |(kind, d, a, b, addr)| match kind {
            0 => Inst::int_rrr(IntOp::Add, int(d), int(a), int(b)),
            1 => Inst::fp_rrr(FpOp::FMul, fp(d), fp(a), fp(b)),
            2 => Inst::mmx(MmxOp::PaddsW, simd(d), simd(a), simd(b)),
            3 => Inst::load(MemOp::LoadW, int(d), int(a), 0x10_0000 + addr * 4),
            _ => Inst::store(MemOp::StoreW, int(a), int(b), 0x20_0000 + addr * 4),
        },
    );
    proptest::collection::vec(inst, 1..max_len).prop_map(|mut v| {
        for (i, inst) in v.iter_mut().enumerate() {
            *inst = inst.at(0x1000 + 4 * i as u64);
        }
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Everything fetched retires, in every random program, under both
    /// real and ideal memory.
    #[test]
    fn pipeline_conserves_instructions(prog in arb_program(300), ideal in any::<bool>()) {
        let n = prog.len() as u64;
        let mem = if ideal { MemConfig::ideal() } else { MemConfig::paper() };
        let mut cpu = Cpu::new(
            CpuConfig::paper(1, medsim::workloads::trace::SimdIsa::Mmx),
            MemSystem::new(mem),
        );
        cpu.attach_thread(0, Box::new(VecStream::new(prog)));
        prop_assert!(cpu.run_to_idle(10_000_000), "must drain");
        prop_assert_eq!(cpu.stats().committed(), n);
    }

    /// Two threads running random programs retire exactly the sum, and
    /// never take longer than running them back to back.
    #[test]
    fn smt_is_never_slower_than_serial(a in arb_program(200), b in arb_program(200)) {
        let serial = {
            let mut cpu = Cpu::new(
                CpuConfig::paper(1, medsim::workloads::trace::SimdIsa::Mmx),
                MemSystem::new(MemConfig::ideal()),
            );
            cpu.attach_thread(0, Box::new(VecStream::new(a.clone())));
            prop_assert!(cpu.run_to_idle(10_000_000));
            cpu.attach_thread(0, Box::new(VecStream::new(b.clone())));
            prop_assert!(cpu.run_to_idle(10_000_000));
            cpu.stats().cycles
        };
        let smt = {
            let mut cpu = Cpu::new(
                CpuConfig::paper(2, medsim::workloads::trace::SimdIsa::Mmx),
                MemSystem::new(MemConfig::ideal()),
            );
            cpu.attach_thread(0, Box::new(VecStream::new(a)));
            cpu.attach_thread(1, Box::new(VecStream::new(b)));
            prop_assert!(cpu.run_to_idle(10_000_000));
            cpu.stats().cycles
        };
        // Allow a small constant slack for drain effects on tiny programs.
        prop_assert!(smt <= serial + 16, "SMT {smt} vs serial {serial}");
    }

    /// MOM stream semantics agree with per-group MMX semantics for every
    /// mirrored opcode, on random register values and stream lengths.
    #[test]
    fn mom_equals_mmx_per_group(
        groups in proptest::collection::vec(any::<u64>(), 16),
        bgroups in proptest::collection::vec(any::<u64>(), 16),
        slen in 1u8..=16,
        op_idx in 0usize..medsim::isa::MomOp::ALL.len(),
    ) {
        let op = medsim::isa::MomOp::ALL[op_idx];
        prop_assume!(op.mmx_equiv().is_some());
        // Shift-type equivalents read an immediate; use 0 for both sides.
        let a = StreamValue::from_slice(&groups);
        let b = StreamValue::from_slice(&bgroups);
        let out = exec_mom_vv(op, &a, &b, slen, 0);
        let m = op.mmx_equiv().unwrap();
        for g in 0..usize::from(slen) {
            prop_assert_eq!(out.group(g), exec_mmx_rr(m, a.group(g), b.group(g)), "group {}", g);
        }
        for g in usize::from(slen)..16 {
            prop_assert_eq!(out.group(g), 0, "tail group {}", g);
        }
    }

    /// The workload suite always terminates and produces nonzero work
    /// for any tiny scale and seed.
    #[test]
    fn workload_generators_terminate(seed in any::<u64>(), slot in 0usize..8) {
        use medsim::workloads::trace::InstStream as _;
        let spec = medsim::workloads::WorkloadSpec { scale: 1e-6, seed };
        let b = medsim::workloads::Workload::slot_benchmark(slot);
        let mut s = b.stream(slot, medsim::workloads::trace::SimdIsa::Mom, &spec);
        let mut n = 0u64;
        while s.next_inst().is_some() {
            n += 1;
            prop_assert!(n < 5_000_000, "unbounded generator");
        }
        prop_assert!(n > 0);
    }

    /// Stream lengths in generated traces never exceed the architectural
    /// maximum, and memory descriptors agree with them.
    #[test]
    fn generated_stream_lengths_are_architectural(seed in any::<u64>()) {
        use medsim::workloads::trace::InstStream as _;
        let spec = medsim::workloads::WorkloadSpec { scale: 1e-6, seed };
        let mut s = medsim::workloads::Benchmark::Mpeg2Enc
            .stream(0, medsim::workloads::trace::SimdIsa::Mom, &spec);
        while let Some(i) = s.next_inst() {
            prop_assert!(i.slen >= 1 && i.slen <= medsim::isa::MAX_STREAM_LEN);
            if let (Op::Mom(_), Some(m)) = (i.op, i.mem) {
                prop_assert_eq!(u64::from(m.count), u64::from(i.slen));
            }
        }
    }
}
