//! Property-style integration tests over the full stack: random
//! programs through the pipeline, random workload specs through the
//! suite, and cross-ISA semantic equivalences.
//!
//! The build environment has no registry access, so instead of
//! `proptest` these run a fixed number of seeded random cases through
//! the `rand` shim — deterministic, reproducible, and shrink-free (the
//! failing seed is printed in the assertion message).

use medsim::isa::prelude::*;
use medsim::isa::semantics::{exec_mmx_rr, exec_mom_vv, StreamValue};
use medsim::workloads::trace::VecStream;
use medsim::{cpu::Cpu, cpu::CpuConfig, mem::MemConfig, mem::MemSystem};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 24;

/// Build a random but well-formed straight-line program.
fn arb_program(rng: &mut SmallRng, max_len: usize) -> Vec<Inst> {
    let len = rng.gen_range(1..max_len.max(2));
    (0..len)
        .map(|i| {
            let kind: u8 = rng.gen_range(0..5);
            let d: u8 = rng.gen_range(1..9);
            let a: u8 = rng.gen_range(1..9);
            let b: u8 = rng.gen_range(1..9);
            let addr: u64 = rng.gen_range(0..4096u64);
            let inst = match kind {
                0 => Inst::int_rrr(IntOp::Add, int(d), int(a), int(b)),
                1 => Inst::fp_rrr(FpOp::FMul, fp(d), fp(a), fp(b)),
                2 => Inst::mmx(MmxOp::PaddsW, simd(d), simd(a), simd(b)),
                3 => Inst::load(MemOp::LoadW, int(d), int(a), 0x10_0000 + addr * 4),
                _ => Inst::store(MemOp::StoreW, int(a), int(b), 0x20_0000 + addr * 4),
            };
            inst.at(0x1000 + 4 * i as u64)
        })
        .collect()
}

/// Everything fetched retires, in every random program, under both
/// real and ideal memory.
#[test]
fn pipeline_conserves_instructions() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x00A1_1CE5 ^ case);
        let prog = arb_program(&mut rng, 300);
        let ideal = rng.gen_bool(0.5);
        let n = prog.len() as u64;
        let mem = if ideal {
            MemConfig::ideal()
        } else {
            MemConfig::paper()
        };
        let mut cpu = Cpu::new(
            CpuConfig::paper(1, medsim::workloads::trace::SimdIsa::Mmx),
            MemSystem::new(mem),
        );
        cpu.attach_thread(0, Box::new(VecStream::new(prog)));
        assert!(cpu.run_to_idle(10_000_000), "case {case}: must drain");
        assert_eq!(cpu.stats().committed(), n, "case {case} (ideal={ideal})");
    }
}

/// Two threads running random programs retire exactly the sum, and
/// never take longer than running them back to back.
#[test]
fn smt_is_never_slower_than_serial() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5E71A1 ^ case);
        let a = arb_program(&mut rng, 200);
        let b = arb_program(&mut rng, 200);
        let serial = {
            let mut cpu = Cpu::new(
                CpuConfig::paper(1, medsim::workloads::trace::SimdIsa::Mmx),
                MemSystem::new(MemConfig::ideal()),
            );
            cpu.attach_thread(0, Box::new(VecStream::new(a.clone())));
            assert!(cpu.run_to_idle(10_000_000), "case {case}");
            cpu.attach_thread(0, Box::new(VecStream::new(b.clone())));
            assert!(cpu.run_to_idle(10_000_000), "case {case}");
            cpu.stats().cycles
        };
        let smt = {
            let mut cpu = Cpu::new(
                CpuConfig::paper(2, medsim::workloads::trace::SimdIsa::Mmx),
                MemSystem::new(MemConfig::ideal()),
            );
            cpu.attach_thread(0, Box::new(VecStream::new(a)));
            cpu.attach_thread(1, Box::new(VecStream::new(b)));
            assert!(cpu.run_to_idle(10_000_000), "case {case}");
            cpu.stats().cycles
        };
        // Allow a small constant slack for drain effects on tiny programs.
        assert!(
            smt <= serial + 16,
            "case {case}: SMT {smt} vs serial {serial}"
        );
    }
}

/// MOM stream semantics agree with per-group MMX semantics for every
/// mirrored opcode, on random register values and stream lengths.
#[test]
fn mom_equals_mmx_per_group() {
    let mut rng = SmallRng::seed_from_u64(0x9009);
    // Cover every opcode several times rather than sampling 24 cases.
    for op in medsim::isa::MomOp::ALL {
        let Some(m) = op.mmx_equiv() else { continue };
        for _ in 0..6 {
            let groups: Vec<u64> = (0..16).map(|_| rng.gen_range(0..u64::MAX)).collect();
            let bgroups: Vec<u64> = (0..16).map(|_| rng.gen_range(0..u64::MAX)).collect();
            let slen: u8 = rng.gen_range(1..17);
            // Shift-type equivalents read an immediate; use 0 for both sides.
            let a = StreamValue::from_slice(&groups);
            let b = StreamValue::from_slice(&bgroups);
            let out = exec_mom_vv(op, &a, &b, slen, 0);
            for g in 0..usize::from(slen) {
                assert_eq!(
                    out.group(g),
                    exec_mmx_rr(m, a.group(g), b.group(g)),
                    "{op:?} group {g} slen {slen}"
                );
            }
            for g in usize::from(slen)..16 {
                assert_eq!(out.group(g), 0, "{op:?} tail group {g}");
            }
        }
    }
}

/// The workload suite always terminates and produces nonzero work
/// for any tiny scale and seed.
#[test]
fn workload_generators_terminate() {
    use medsim::workloads::trace::InstStream as _;
    let mut rng = SmallRng::seed_from_u64(0x7E57);
    for case in 0..CASES {
        let seed: u64 = rng.gen_range(0..u64::MAX);
        let slot = rng.gen_range(0..8usize);
        let spec = medsim::workloads::WorkloadSpec { scale: 1e-6, seed };
        let b = medsim::workloads::Workload::slot_benchmark(slot);
        let mut s = b.stream(slot, medsim::workloads::trace::SimdIsa::Mom, &spec);
        let mut n = 0u64;
        while s.next_inst().is_some() {
            n += 1;
            assert!(
                n < 5_000_000,
                "case {case} seed {seed}: unbounded generator"
            );
        }
        assert!(n > 0, "case {case} seed {seed}");
    }
}

/// Stream lengths in generated traces never exceed the architectural
/// maximum, and memory descriptors agree with them.
#[test]
fn generated_stream_lengths_are_architectural() {
    use medsim::workloads::trace::InstStream as _;
    let mut rng = SmallRng::seed_from_u64(0x51E9);
    for case in 0..CASES {
        let seed: u64 = rng.gen_range(0..u64::MAX);
        let spec = medsim::workloads::WorkloadSpec { scale: 1e-6, seed };
        let mut s = medsim::workloads::Benchmark::Mpeg2Enc.stream(
            0,
            medsim::workloads::trace::SimdIsa::Mom,
            &spec,
        );
        while let Some(i) = s.next_inst() {
            assert!(
                i.slen >= 1 && i.slen <= medsim::isa::MAX_STREAM_LEN,
                "case {case} seed {seed}: slen {}",
                i.slen
            );
            if let (Op::Mom(_), Some(m)) = (i.op, i.mem) {
                assert_eq!(
                    u64::from(m.count),
                    u64::from(i.slen),
                    "case {case} seed {seed}"
                );
            }
        }
    }
}
