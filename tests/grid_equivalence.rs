//! The parallel experiment engine must be an *invisible* optimization:
//! `run_grid` over any configuration set produces bit-identical
//! [`RunResult`]s to mapping `Simulation::run` serially, independent of
//! worker count, thread-pool scheduling, and trace memoization.

use medsim::core::runner::{run_grid, run_grid_with, TraceCache};
use medsim::core::sim::{SimConfig, Simulation};
use medsim::core::RunResult;
use medsim::mem::HierarchyKind;
use medsim::workloads::trace::SimdIsa;
use medsim::workloads::WorkloadSpec;

fn tiny() -> WorkloadSpec {
    WorkloadSpec {
        scale: 1.5e-5,
        seed: 21,
    }
}

/// A small but diverse grid: both ISAs, several thread counts, all
/// hierarchies.
fn sample_grid() -> Vec<SimConfig> {
    let spec = tiny();
    let mut configs = Vec::new();
    for &isa in &SimdIsa::ALL {
        for &threads in &[1usize, 2, 4] {
            for &h in &HierarchyKind::ALL {
                configs.push(
                    SimConfig::new(isa, threads)
                        .with_hierarchy(h)
                        .with_spec(spec),
                );
            }
        }
    }
    configs
}

#[test]
fn grid_matches_serial_bit_for_bit() {
    let configs = sample_grid();
    // Serial reference: one run at a time, no trace memoization at all.
    let reference: Vec<RunResult> = configs
        .iter()
        .map(|c| Simulation::run_cached(c, &TraceCache::disabled()))
        .collect();
    // Parallel: 4 workers over a shared memoizing cache.
    let parallel = run_grid_with(&configs, 4, &TraceCache::from_env());
    assert_eq!(
        reference, parallel,
        "run_grid must reproduce the serial path exactly"
    );
    // And the public entry point (env-configured jobs/cache).
    let default_path = run_grid(&configs);
    assert_eq!(reference, default_path);
}

#[test]
fn grid_is_deterministic_across_invocations() {
    let configs = sample_grid();
    // Fresh caches and pools each time: scheduling may interleave
    // differently, results must not.
    let a = run_grid_with(&configs, 4, &TraceCache::from_env());
    let b = run_grid_with(&configs, 4, &TraceCache::from_env());
    assert_eq!(a, b, "two run_grid invocations must agree");
    // Worker count must not matter either.
    let c = run_grid_with(&configs, 2, &TraceCache::from_env());
    assert_eq!(a, c, "worker count must not affect results");
}

#[test]
fn trace_memoization_is_invisible_to_a_single_run() {
    let spec = tiny();
    for &isa in &SimdIsa::ALL {
        let cfg = SimConfig::new(isa, 8).with_spec(spec);
        let cached = Simulation::run_cached(&cfg, &TraceCache::from_env());
        let uncached = Simulation::run_cached(&cfg, &TraceCache::disabled());
        assert_eq!(
            cached, uncached,
            "{isa}: memoized traces must replay exactly"
        );
    }
}

#[test]
fn grid_preserves_input_order() {
    let spec = tiny();
    let configs: Vec<SimConfig> = [8usize, 1, 4, 2]
        .iter()
        .map(|&t| SimConfig::new(SimdIsa::Mmx, t).with_spec(spec))
        .collect();
    let results = run_grid_with(&configs, 4, &TraceCache::from_env());
    let threads: Vec<usize> = results.iter().map(|r| r.threads).collect();
    assert_eq!(
        threads,
        vec![8, 1, 4, 2],
        "results come back in input order"
    );
}
