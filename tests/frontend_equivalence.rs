//! Differential proof for the sharded frontend: running trace
//! synthesis/decode on producer threads behind bounded rings must be
//! **invisible** — bitwise-identical [`RunResult`]s to the inline
//! reference path (`MEDSIM_FRONTEND=inline`) across every cache
//! hierarchy, every SMT fetch policy, both ISAs and the paper's thread
//! counts, on the real synthesized workloads. The sharded runs use an
//! explicit worker budget so real producer threads spawn even on a
//! single-core CI host, and each configuration also runs with the
//! budget exhausted to pin the mid-run inline-fallback path.

use medsim::core::frontend::{Frontend, JobBudget};
use medsim::core::runner::TraceCache;
use medsim::core::sim::{SimConfig, Simulation};
use medsim::core::RunResult;
use medsim::cpu::FetchPolicy;
use medsim::mem::HierarchyKind;
use medsim::workloads::trace::SimdIsa;
use medsim::workloads::WorkloadSpec;

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        scale: 1.0e-5,
        seed: 99,
    }
}

/// Hierarchies at the paper's thread counts plus the fetch-policy sweep
/// at 8 threads — every frontend-visible structural axis.
fn grid() -> Vec<SimConfig> {
    let mut configs = Vec::new();
    for &isa in &SimdIsa::ALL {
        for &h in &HierarchyKind::ALL {
            for &threads in &[1usize, 4, 8] {
                configs.push(
                    SimConfig::new(isa, threads)
                        .with_hierarchy(h)
                        .with_spec(spec()),
                );
            }
        }
        for &p in &FetchPolicy::ALL {
            configs.push(SimConfig::new(isa, 8).with_policy(p).with_spec(spec()));
        }
    }
    configs
}

fn run_all(frontend: &Frontend) -> Vec<RunResult> {
    // A shared cache per sweep, like a real grid; first runs synthesize
    // (producers doing generator work), later runs replay packed
    // traces (producers doing block decode) — both paths covered.
    let cache = TraceCache::from_env();
    grid()
        .iter()
        .map(|c| Simulation::run_fronted(c, &cache, frontend))
        .collect()
}

#[test]
fn sharded_frontend_is_bitwise_identical_to_inline() {
    let reference = run_all(&Frontend::inline());

    // Enough permits for every context of the widest run: all shards
    // get real producer threads.
    let roomy = JobBudget::new(16);
    let got = run_all(&Frontend::sharded_with(&roomy));
    assert_eq!(got, reference, "fully sharded frontend diverges");
    assert_eq!(roomy.available(), 16, "all permits returned");

    // One permit: within a run, some contexts shard and the rest fall
    // back inline mid-run — the mixed path must be invisible too.
    let tight = JobBudget::new(1);
    let got = run_all(&Frontend::sharded_with(&tight));
    assert_eq!(got, reference, "budget-starved sharded frontend diverges");

    // Exhausted budget: sharded selection, pure inline fallback.
    let dry = JobBudget::new(0);
    let got = run_all(&Frontend::sharded_with(&dry));
    assert_eq!(got, reference, "inline-fallback frontend diverges");
}

#[test]
fn sharded_frontend_is_identical_across_prefetch_depths() {
    // Ring depth changes production scheduling, never the sequence.
    let cfg = SimConfig::new(SimdIsa::Mom, 8).with_spec(spec());
    let cache = TraceCache::from_env();
    let reference = Simulation::run_fronted(&cfg, &cache, &Frontend::inline());
    for depth in [1usize, 2, 16] {
        let budget = JobBudget::new(8);
        let frontend = Frontend {
            prefetch_blocks: depth,
            ..Frontend::sharded_with(&budget)
        };
        let got = Simulation::run_fronted(&cfg, &cache, &frontend);
        assert_eq!(got, reference, "prefetch depth {depth} diverges");
    }
}
