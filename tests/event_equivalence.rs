//! End-to-end differential proof over the figure-5 grid: the calendar
//! queue and the batched stream-request path must produce bitwise
//! identical [`RunResult`]s to the seed configuration (binary-heap
//! completions + per-element memory requests) across the whole
//! ISA × thread-count × hierarchy space the paper evaluates, on the
//! real synthesized workloads.

use medsim::core::sim::{SimConfig, Simulation};
use medsim::core::RunResult;
use medsim::cpu::SchedulerKind;
use medsim::mem::HierarchyKind;
use medsim::workloads::trace::SimdIsa;
use medsim::workloads::WorkloadSpec;

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        scale: 1.2e-5,
        seed: 77,
    }
}

/// The figure-5 grid (both ISAs, the paper's thread counts) plus the
/// hierarchy ablations, at test scale.
fn grid() -> Vec<SimConfig> {
    let mut configs = Vec::new();
    for &isa in &SimdIsa::ALL {
        for &threads in &[1usize, 2, 4, 8] {
            configs.push(SimConfig::new(isa, threads).with_spec(spec()));
        }
        for &h in &HierarchyKind::ALL {
            configs.push(SimConfig::new(isa, 4).with_hierarchy(h).with_spec(spec()));
        }
    }
    configs
}

fn run_all(scheduler: SchedulerKind, stream_batch: bool) -> Vec<RunResult> {
    grid()
        .into_iter()
        .map(|c| Simulation::run(&c.with_scheduler(scheduler).with_stream_batch(stream_batch)))
        .collect()
}

#[test]
fn fig5_grid_is_bitwise_identical_across_schedulers_and_stream_paths() {
    let reference = run_all(SchedulerKind::Heap, false);
    for (sched, batch) in [
        (SchedulerKind::Wheel, true),
        (SchedulerKind::Wheel, false),
        (SchedulerKind::Heap, true),
    ] {
        let got = run_all(sched, batch);
        assert_eq!(
            got, reference,
            "{sched:?}/stream_batch={batch} diverges from the seed path"
        );
    }
}
