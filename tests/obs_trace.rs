//! Schema-shape tests for the observability layer: the Chrome trace
//! export and the per-run JSON report produced by a small figure-5
//! style run.
//!
//! The event sink and the knobs are process-global, so every test here
//! serializes on one mutex and uses the programmatic knob overrides
//! (`set_trace` / `set_sample_cycles` / `set_report_path`) instead of
//! mutating the environment.

use medsim::core::frontend::{Frontend, JobBudget};
use medsim::core::runner::TraceCache;
use medsim::core::sim::{SimConfig, Simulation};
use medsim::core::ExecMode;
use medsim::obs;
use medsim::workloads::trace::SimdIsa;
use medsim::workloads::WorkloadSpec;
use std::sync::Mutex;

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn small_config() -> SimConfig {
    SimConfig::new(SimdIsa::Mom, 2)
        .with_cores(2)
        .with_spec(WorkloadSpec {
            scale: 1.0e-5,
            seed: 4242,
        })
}

/// All `"key": <integer>` values of `key` in `json`, in textual order.
fn int_values(json: &str, key: &str) -> Vec<u64> {
    let needle = format!("\"{key}\": ");
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find(&needle) {
        rest = &rest[at + needle.len()..];
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        if !digits.is_empty() {
            out.push(digits.parse().expect("digits parse"));
        }
    }
    out
}

#[test]
fn chrome_trace_has_valid_shape_on_a_small_run() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let _ = obs::drain_events(); // someone else's leftovers
    obs::set_trace(true, None); // buffer-only: this test drains itself
    let result = Simulation::run(&small_config());
    obs::set_trace(false, None);
    assert!(result.cycles > 0);

    let (events, dropped) = obs::drain_events();
    assert!(!events.is_empty(), "a traced run emits events");
    assert!(
        events.iter().any(|e| e.kind == obs::EventKind::Commit),
        "commit events present"
    );
    assert!(
        events.iter().any(|e| e.kind == obs::EventKind::RunBegin),
        "run-begin present"
    );

    let json = obs::chrome_trace_json(&events, dropped);
    obs::validate_json(&json).expect("chrome trace must be valid JSON");
    assert!(json.contains("\"schema\": \"medsim-chrome-trace/v1\""));

    // Timestamps must be monotonically non-decreasing in file order.
    let ts = int_values(&json, "ts");
    assert_eq!(ts.len(), events.len(), "one ts per event");
    assert!(ts.windows(2).all(|w| w[0] <= w[1]), "ts sorted");

    // Span begins and ends must pair up.
    let begins = json.matches("\"ph\": \"B\"").count();
    let ends = json.matches("\"ph\": \"E\"").count();
    assert_eq!(begins, ends, "matched B/E span pairs");
    assert!(begins >= 1, "at least the run span");
}

#[test]
fn run_report_has_valid_shape_with_sampling_on() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let path = std::env::temp_dir().join(format!("medsim_report_{}.json", std::process::id()));
    let path_str = path.to_str().expect("utf-8 temp path");
    obs::set_report_path(Some(path_str));
    obs::set_sample_cycles(256);
    let result = Simulation::run(&small_config());
    obs::set_sample_cycles(0);
    obs::set_report_path(None);

    let json = std::fs::read_to_string(&path).expect("report file written");
    let _ = std::fs::remove_file(&path);
    obs::validate_json(&json).expect("report must be valid JSON");
    assert!(json.contains("\"schema\": \"medsim-run-report/v1\""));
    for section in [
        "\"config\"",
        "\"result\"",
        "\"sched\"",
        "\"roofline\"",
        "\"samples\"",
    ] {
        assert!(json.contains(section), "missing section {section}");
    }
    assert!(
        json.contains("\"interval_cycles\": 256"),
        "sampler interval recorded"
    );
    assert!(
        json.matches("\"cycle\": ").count() >= 2,
        "a multi-thousand-cycle run yields sample rows at period 256"
    );
    // The report's headline counters agree with the returned result.
    assert!(json.contains(&format!("\"cycles\": {}", result.cycles)));
    assert!(json.contains(&format!("\"committed\": {}", result.committed)));
    assert!(json.contains("\"peak_bytes_per_cycle\""));
}

#[test]
fn sched_counters_populate_under_the_quantum_schedule() {
    // An explicit worker budget so the quantum-parallel path runs even
    // on a single-CPU host (where the global budget has no permits).
    let budget = JobBudget::new(2);
    let config = small_config().with_exec(ExecMode::Parallel);
    let parallel = Simulation::run_fronted(
        &config,
        &TraceCache::disabled(),
        &Frontend::sharded_with(&budget),
    );
    let serial = Simulation::run_fronted(
        &small_config().with_exec(ExecMode::Serial),
        &TraceCache::disabled(),
        &Frontend::inline(),
    );
    assert_eq!(parallel, serial, "sched counters must not break equality");
    assert!(
        parallel.sched.rounds() > 0,
        "a parallel run takes barrier rounds: {:?}",
        parallel.sched
    );
    assert!(
        parallel.sched.quantum_rounds > 0,
        "the derived lookahead yields multi-cycle quanta: {:?}",
        parallel.sched
    );
    assert!(parallel.sched.quantum_cycles >= 2 * parallel.sched.quantum_rounds);
    assert_eq!(serial.sched.rounds(), 0, "serial takes no barrier rounds");
}
