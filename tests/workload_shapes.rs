//! Integration tests of the workload models against the paper's
//! Table 2/3 characterization (shape-level assertions with tolerance
//! bands; the exact measured values live in EXPERIMENTS.md).

use medsim::workloads::trace::{InstStream, SimdIsa};
use medsim::workloads::{Benchmark, InstMix, WorkloadSpec};

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        scale: 5e-4,
        seed: 3,
    }
}

fn mix_of(b: Benchmark, isa: SimdIsa) -> InstMix {
    let mut mix = InstMix::default();
    let mut s = b.stream(0, isa, &spec());
    while let Some(i) = s.next_inst() {
        mix.record(&i);
    }
    mix
}

fn suite_mix(isa: SimdIsa) -> InstMix {
    let mut total = InstMix::default();
    for (slot, b) in Benchmark::PAPER_ORDER.iter().enumerate() {
        let mut s = b.stream(slot, isa, &spec());
        let mut mix = InstMix::default();
        while let Some(i) = s.next_inst() {
            mix.record(&i);
        }
        let _ = slot;
        total.merge(&mix);
    }
    total
}

#[test]
fn suite_is_integer_dominated_under_mmx() {
    // §4.2: "our multimedia workload is dominated by the integer
    // pipeline (62% on average)"; SIMD is a minority (16%).
    let b = suite_mix(SimdIsa::Mmx).breakdown();
    assert!(b.integer_pct > 45.0, "integer-dominated: {b}");
    assert!(b.simd_pct < 30.0, "SIMD is the minority: {b}");
    assert!(b.integer_pct > b.simd_pct + 15.0, "{b}");
}

#[test]
fn mom_raises_integer_share_while_cutting_counts() {
    // §4.2: MOM cuts absolute counts but the integer *percentage* rises.
    let mmx = suite_mix(SimdIsa::Mmx);
    let mom = suite_mix(SimdIsa::Mom);
    assert!(mom.total() < mmx.total());
    assert!(mom.breakdown().integer_pct > mmx.breakdown().integer_pct - 1.0);
}

#[test]
fn mom_reductions_match_section_4_2_bands() {
    let mmx = suite_mix(SimdIsa::Mmx);
    let mom = suite_mix(SimdIsa::Mom);
    let red = |a: u64, b: u64| 1.0 - b as f64 / a.max(1) as f64;
    let int_red = red(mmx.integer, mom.integer);
    let mem_red = red(mmx.memory, mom.memory);
    let simd_red = red(mmx.simd, mom.simd);
    // Paper: ~20% integer, ~7% memory, ~62% vector.
    assert!(
        int_red > 0.10 && int_red < 0.35,
        "integer reduction {int_red}"
    );
    assert!(
        mem_red > 0.02 && mem_red < 0.20,
        "memory reduction {mem_red}"
    );
    assert!(
        simd_red > 0.45 && simd_red < 0.75,
        "vector reduction {simd_red}"
    );
    // And the ordering the paper stresses: vector >> integer > memory.
    assert!(simd_red > int_red && int_red > mem_red);
}

#[test]
fn instruction_ratio_near_table3() {
    // Table 3 totals: 1429 / 1087 ≈ 1.31.
    let mmx = suite_mix(SimdIsa::Mmx).total() as f64;
    let mom = suite_mix(SimdIsa::Mom).total() as f64;
    let ratio = mmx / mom;
    assert!(ratio > 1.2 && ratio < 1.6, "I_MMX/I_MOM = {ratio}");
}

#[test]
fn per_benchmark_count_ratios_follow_table3_ordering() {
    // mpeg2enc shrinks the most under MOM; gsmdec and mesa not at all.
    let ratio = |b: Benchmark| {
        let m = mix_of(b, SimdIsa::Mmx).total() as f64;
        let o = mix_of(b, SimdIsa::Mom).total() as f64;
        o / m
    };
    let enc = ratio(Benchmark::Mpeg2Enc);
    let gsm = ratio(Benchmark::GsmDec);
    let mesa = ratio(Benchmark::Mesa);
    assert!(enc < 0.75, "mpeg2enc MOM/MMX {enc} (paper 0.57)");
    assert!((gsm - 1.0).abs() < 1e-9, "gsmdec unvectorized: {gsm}");
    assert!((mesa - 1.0).abs() < 1e-9, "mesa unvectorized: {mesa}");
    assert!(
        enc < ratio(Benchmark::JpegEnc),
        "encoder shrinks more than jpeg"
    );
}

#[test]
fn unvectorized_benchmarks_emit_no_simd() {
    for b in [Benchmark::GsmDec, Benchmark::Mesa] {
        for isa in SimdIsa::ALL {
            let m = mix_of(b, isa);
            assert_eq!(m.simd, 0, "{b}/{isa}");
        }
    }
}

#[test]
fn mesa_carries_the_fp_share() {
    let mesa = mix_of(Benchmark::Mesa, SimdIsa::Mmx).breakdown();
    assert!(mesa.fp_pct > 8.0, "{mesa}");
    let gsm = mix_of(Benchmark::GsmDec, SimdIsa::Mmx).breakdown();
    assert!(gsm.fp_pct < 1.0, "{gsm}");
}

#[test]
fn full_scale_counts_track_paper_millions() {
    // units_full calibration: at a fixed scale the generated MMX counts
    // should be proportional to Table 3's #ins row within ±25%.
    let per_m: Vec<f64> = Benchmark::ALL
        .iter()
        .map(|&b| {
            let m = mix_of(b, SimdIsa::Mmx).total() as f64;
            m / b.paper_minsts(SimdIsa::Mmx)
        })
        .collect();
    let mean = per_m.iter().sum::<f64>() / per_m.len() as f64;
    for (b, v) in Benchmark::ALL.iter().zip(&per_m) {
        assert!(
            (v / mean - 1.0).abs() < 0.25,
            "{b}: {v:.0} insts per paper-M vs mean {mean:.0}"
        );
    }
}

#[test]
fn traces_are_reproducible_across_instances_with_same_seed() {
    let spec = spec();
    let count = |instance: usize| {
        let mut s = Benchmark::JpegEnc.stream(instance, SimdIsa::Mmx, &spec);
        let mut n = 0u64;
        while s.next_inst().is_some() {
            n += 1;
        }
        n
    };
    // Different instances relocate addresses but execute the same work.
    assert_eq!(count(0), count(0));
    let a = count(0) as f64;
    let b = count(3) as f64;
    assert!(
        (a / b - 1.0).abs() < 0.05,
        "instances do equivalent work: {a} vs {b}"
    );
}
