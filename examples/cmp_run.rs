//! A CMP run: four SMT cores with private L1 levels sharing one
//! L2/DRAM backend, stepped serially (the reference schedule) and then
//! with barrier-parallel phase-A workers — bitwise-identical results,
//! host parallelism permitting a wall-clock win on multi-core hosts.
//!
//! ```sh
//! cargo run --release --example cmp_run
//! # bigger machine / bigger run:
//! MEDSIM_CORES=4 MEDSIM_SCALE=0.01 MEDSIM_JOBS=8 cargo run --release --example cmp_run
//! ```

use medsim::core::frontend::{Frontend, JobBudget};
use medsim::core::machine;
use medsim::core::runner::TraceCache;
use medsim::core::sim::{SimConfig, Simulation};
use medsim::core::ExecMode;
use medsim::workloads::{trace::SimdIsa, WorkloadSpec};
use std::time::Instant;

fn main() {
    let scale = std::env::var("MEDSIM_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(2e-3);
    // Honor MEDSIM_CORES when set; a 1-core machine has nothing to
    // demo, so only then fall back to four cores.
    let cores = match machine::cores_from_env() {
        1 => 4,
        n => n,
    };
    let spec = WorkloadSpec::new(scale);
    let config = SimConfig::new(SimdIsa::Mom, 2)
        .with_cores(cores)
        .with_spec(spec);
    println!(
        "CMP of {cores} SMT cores x {} thread contexts at scale {scale:.0e} \
         (one shared L2/DRAM backend)",
        config.threads,
    );
    if machine::cores_from_env() == 1 {
        println!("(MEDSIM_CORES unset or 1: demoing a 4-core machine)");
    }
    println!();

    // Serial reference: one host thread steps every core, both phases.
    let start = Instant::now();
    let serial = Simulation::run_fronted(
        &config.clone().with_exec(ExecMode::Serial),
        &TraceCache::from_env(),
        &Frontend::inline(),
    );
    let serial_s = start.elapsed().as_secs_f64();
    println!(
        "serial schedule:   {serial_s:>6.2}s  ({:.2}M cycles, EIPC {:.2})",
        serial.cycles as f64 / 1e6,
        serial.equiv_ipc(),
    );

    // Barrier-parallel: phase A (complete/commit/issue) fans out
    // across workers, phase B (memory/dispatch/fetch) drains in fixed
    // core order — the bus arbiter that keeps results seed-stable.
    let budget = JobBudget::new(cores);
    let start = Instant::now();
    let parallel = Simulation::run_fronted(
        &config.clone().with_exec(ExecMode::Parallel),
        &TraceCache::from_env(),
        &Frontend::sharded_with(&budget),
    );
    let parallel_s = start.elapsed().as_secs_f64();
    println!(
        "parallel schedule: {parallel_s:>6.2}s  ({:.2}x the serial wall clock)",
        serial_s / parallel_s.max(1e-9),
    );

    assert_eq!(parallel, serial, "stepping modes must be invisible");
    println!("\nresults bit-identical across stepping modes");
    println!(
        "machine: {} programs completed over {} contexts, IPC {:.2}, \
         shared L2 hit rate {:.1}%, mem stalls {}",
        parallel.programs_completed,
        cores * config.threads,
        parallel.ipc(),
        parallel.l2_hit_rate * 100.0,
        parallel.mem_stalls,
    );
    if std::thread::available_parallelism().map_or(1, usize::from) < 2 {
        println!("(single-core host: phase-A workers timeslice; the win needs real cores)");
    }
}
