//! Demonstrate the decoupled cache hierarchy (§5.4): vector accesses
//! bypass L1 into a 2-banked L2 through dedicated ports, with
//! exclusive-bit coherence — and show what it buys an 8-thread SMT+MOM
//! machine.
//!
//! ```sh
//! cargo run --release --example decoupled_cache
//! ```

use medsim::core::metrics::EipcFactor;
use medsim::core::sim::{SimConfig, Simulation};
use medsim::cpu::FetchPolicy;
use medsim::mem::HierarchyKind;
use medsim::workloads::{trace::SimdIsa, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec::new(5e-4);
    let factor = EipcFactor::compute(&spec);

    println!("8-thread SMT+MOM (OCOUNT fetch) across hierarchies:\n");
    let mut results = Vec::new();
    for h in HierarchyKind::ALL {
        let cfg = SimConfig::new(SimdIsa::Mom, 8)
            .with_hierarchy(h)
            .with_policy(FetchPolicy::OCount)
            .with_spec(spec);
        let r = Simulation::run(&cfg);
        println!("{h:>13}: EIPC {:>6.2}", r.figure_of_merit(&factor));
        println!(
            "{:>13}  L1 hit {:>5.1}%  avg L1 latency {:>5.2}  memory stalls {}",
            "",
            r.l1_hit_rate * 100.0,
            r.l1_avg_latency,
            r.mem_stalls
        );
        results.push((h, r));
    }
    let ideal = results[0].1.figure_of_merit(&factor);
    let conv = results[1].1.figure_of_merit(&factor);
    let dec = results[2].1.figure_of_merit(&factor);
    println!();
    println!(
        "degradation vs ideal: conventional {:.0}%, decoupled {:.0}%",
        (1.0 - conv / ideal) * 100.0,
        (1.0 - dec / ideal) * 100.0
    );
    println!("(paper: the decoupled organization cuts SMT+MOM's degradation to ~15%)");
}
