//! One big 8-thread run with decoupled frontend shards: each simulated
//! thread context's trace synthesis / packed decode runs on a worker
//! thread (budgeted by `MEDSIM_JOBS`) and feeds the cycle loop through
//! a bounded ring of decoded blocks — against the inline reference
//! path, with cache/store/shard statistics.
//!
//! ```sh
//! MEDSIM_JOBS=4 cargo run --release --example sharded_run
//! # bigger run, deeper rings:
//! MEDSIM_JOBS=8 MEDSIM_SCALE=0.01 MEDSIM_PREFETCH_BLOCKS=8 \
//!     cargo run --release --example sharded_run
//! ```

use medsim::core::frontend::{self, Frontend, FrontendKind};
use medsim::core::runner::TraceCache;
use medsim::core::sim::{SimConfig, Simulation};
use medsim::workloads::{trace::SimdIsa, WorkloadSpec};
use std::time::Instant;

fn main() {
    let scale = std::env::var("MEDSIM_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(2e-3);
    let spec = WorkloadSpec::new(scale);
    let config = SimConfig::new(SimdIsa::Mom, 8).with_spec(spec);
    println!(
        "one 8-thread SMT+MOM run at scale {scale:.0e}, {} worker budget, \
         {} blocks of ring per shard\n",
        frontend::total_workers(),
        frontend::prefetch_blocks_from_env(),
    );

    // With a persistent store configured, pre-warm it before timing:
    // otherwise the inline run (timed first) would pay synthesis and
    // write the store back, handing the sharded run a warm-replay
    // advantage it did not earn. The §5.1 list cycles through eight
    // trace keys.
    if std::env::var("MEDSIM_TRACE_DIR").is_ok() {
        let warm = TraceCache::from_env();
        for slot in 0..8 {
            let _ = warm.source_for(&spec, slot, SimdIsa::Mom);
        }
        println!("(persistent store pre-warmed: both timed runs replay from disk)\n");
    }

    // Inline reference: synthesis/decode stall the cycle loop.
    let inline_cache = TraceCache::from_env();
    let start = Instant::now();
    let inline_run = Simulation::run_fronted(&config, &inline_cache, &Frontend::inline());
    let inline_s = start.elapsed().as_secs_f64();
    println!(
        "inline frontend:  {inline_s:>6.2}s  ({:.2}M cycles, EIPC {:.2})",
        inline_run.cycles as f64 / 1e6,
        inline_run.equiv_ipc(),
    );

    // Sharded: per-context producers overlap the cycle loop. A fresh
    // cache gives both runs the same work: cold synthesis without a
    // store, pure disk replay with the pre-warmed one.
    let sharded_cache = TraceCache::from_env();
    let before = frontend::stats();
    let sharded = Frontend {
        kind: FrontendKind::Sharded,
        ..Frontend::from_env()
    };
    let start = Instant::now();
    let sharded_run = Simulation::run_fronted(&config, &sharded_cache, &sharded);
    let sharded_s = start.elapsed().as_secs_f64();
    let after = frontend::stats();
    println!(
        "sharded frontend: {sharded_s:>6.2}s  ({:.2}x the inline wall clock)",
        inline_s / sharded_s.max(1e-9),
    );

    assert_eq!(sharded_run, inline_run, "frontends must be invisible");
    println!("\nresults bit-identical across frontends");

    let shards = after.sharded - before.sharded;
    let inline_falls = after.inline - before.inline;
    println!(
        "shard stats: {shards} program attaches sharded, {inline_falls} produced inline \
         (budget dry or inline frontend)",
    );
    let cs = sharded_cache.stats();
    println!(
        "cache stats: {} traces synthesized, {} packed bytes resident",
        cs.synthesized, cs.bytes_used,
    );
    println!(
        "store stats: {} hits, {} misses, {} writes (MEDSIM_TRACE_DIR {})",
        cs.store.hits,
        cs.store.misses,
        cs.store.writes,
        if std::env::var("MEDSIM_TRACE_DIR").is_ok() {
            "set"
        } else {
            "unset"
        },
    );
    if frontend::total_workers() < 2 {
        println!("\n(MEDSIM_JOBS < 2: every shard fell back inline; set MEDSIM_JOBS to overlap)");
    }
}
