//! Run the functional media kernels end-to-end — no timing simulation,
//! just the real data transforms the workload models are built from:
//! encode a synthetic frame through motion estimation → DCT →
//! quantization → entropy coding, decode it back, and report PSNR and
//! bitrate.
//!
//! ```sh
//! cargo run --release --example codec_pipeline
//! ```

use medsim::workloads::kernels::huffman::BitWriter;
use medsim::workloads::kernels::motion::{self, Plane};
use medsim::workloads::kernels::zigzag;
use medsim::workloads::kernels::{dct, huffman, quant};

const W: usize = 352;
const H: usize = 240;

fn textured(phase: usize) -> Plane {
    let mut p = Plane::new(W, H, 0);
    for y in 0..H {
        for x in 0..W {
            p.data[y * W + x] = (((x + phase) * 7 + y * 13) % 200 + 20) as u8;
        }
    }
    p
}

fn main() {
    let reference = textured(0);
    let current = textured(3); // camera pan of 3 pixels

    let mut reconstructed = Plane::new(W, H, 0);
    let mut writer = BitWriter::new();
    let mut total_events = 0usize;

    for mb_y in 0..H / 16 {
        for mb_x in 0..W / 16 {
            let (mx, my) = (mb_x * 16, mb_y * 16);
            let mv = motion::full_search(&current, &reference, mx, my, 4);
            let resid = motion::residual(&current, &reference, mx, my, mv);

            // Transform + quantize the four 8x8 blocks, entropy-code them,
            // then reconstruct exactly as a decoder would.
            let mut decoded = [0i16; 256];
            for blk in 0..4 {
                let (bx, by) = (blk % 2, blk / 2);
                let mut block = [0i16; 64];
                for r in 0..8 {
                    for c in 0..8 {
                        block[r * 8 + c] = resid[(by * 8 + r) * 16 + bx * 8 + c];
                    }
                }
                let coef = dct::forward(&block);
                let q = quant::quantize(&coef, &quant::INTRA_MATRIX, 6);
                let events = zigzag::run_length_encode(&q);
                total_events += events.len();
                huffman::encode_block(&mut writer, &events);

                let deq = quant::dequantize(&q, &quant::INTRA_MATRIX, 6);
                let rec = dct::inverse(&deq);
                for r in 0..8 {
                    for c in 0..8 {
                        decoded[(by * 8 + r) * 16 + bx * 8 + c] = rec[r * 8 + c];
                    }
                }
            }
            motion::reconstruct(&mut reconstructed, &reference, mx, my, mv, &decoded);
        }
    }

    // Quality: PSNR of the reconstruction against the original.
    let mse: f64 = current
        .data
        .iter()
        .zip(reconstructed.data.iter())
        .map(|(&a, &b)| {
            let d = f64::from(a) - f64::from(b);
            d * d
        })
        .sum::<f64>()
        / (W * H) as f64;
    let psnr = 10.0 * (255.0f64 * 255.0 / mse.max(1e-9)).log10();
    let bits = writer.bit_len();

    println!("encoded one {W}x{H} frame:");
    println!("  run/level events   {total_events}");
    println!(
        "  bitstream          {} bits ({:.2} bits/pixel)",
        bits,
        bits as f64 / (W * H) as f64
    );
    println!("  luma PSNR          {psnr:.1} dB");
    assert!(psnr > 30.0, "reconstruction quality should exceed 30 dB");
    println!("\n(these are the same kernels the trace generators walk — the");
    println!(" simulator's address streams and trip counts come from real data)");
}
