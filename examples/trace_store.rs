//! The persistent trace store in action: pack the workload's traces,
//! persist them, and show a warm store serving a grid with zero
//! synthesis.
//!
//! ```sh
//! cargo run --release --example trace_store
//! # or against a persistent directory:
//! MEDSIM_TRACE_DIR=/tmp/medsim-traces cargo run --release --example trace_store
//! ```

use medsim::core::runner::{run_grid_with, TraceCache};
use medsim::core::sim::SimConfig;
use medsim::trace::{PackedTrace, TraceStore};
use medsim::workloads::{trace::SimdIsa, Benchmark, StreamIter, WorkloadSpec};
use std::time::Instant;

fn main() {
    let spec = WorkloadSpec::new(1e-4);

    // 1. The packed encoding: density vs the in-memory representation.
    println!("packed trace density (scale {:.0e}):", spec.scale);
    for isa in SimdIsa::ALL {
        for b in [Benchmark::Mpeg2Enc, Benchmark::GsmDec, Benchmark::Mesa] {
            let insts: Vec<_> = StreamIter(b.stream(0, isa, &spec)).collect();
            let packed = PackedTrace::pack(insts.iter().copied());
            println!(
                "  {isa:>3} {:<9} {:>7} insts  {:>5.2} B/inst packed  ({:>4.1}x vs {} B Inst)",
                b.name(),
                packed.len(),
                packed.bytes_per_inst(),
                std::mem::size_of::<medsim::isa::Inst>() as f64 / packed.bytes_per_inst(),
                std::mem::size_of::<medsim::isa::Inst>(),
            );
        }
    }

    // 2. The store: cold grid (synthesize + write-back), then a fresh
    // cache over the same directory (a "second process") hitting disk.
    let dir = match std::env::var("MEDSIM_TRACE_DIR") {
        Ok(d) if !d.is_empty() => std::path::PathBuf::from(d),
        _ => std::env::temp_dir().join(format!("medsim-example-store-{}", std::process::id())),
    };
    let configs: Vec<SimConfig> = SimdIsa::ALL
        .iter()
        .flat_map(|&isa| [1usize, 4].map(|t| SimConfig::new(isa, t).with_spec(spec)))
        .collect();

    let cold_cache = TraceCache::from_env().with_store(TraceStore::at(&dir));
    let start = Instant::now();
    let cold = run_grid_with(&configs, 2, &cold_cache);
    let cold_s = start.elapsed().as_secs_f64();
    let cs = cold_cache.stats();
    println!(
        "\ncold store ({}): {} runs in {cold_s:.2}s — {} synthesized, {} written",
        dir.display(),
        cold.len(),
        cs.synthesized,
        cs.store.writes,
    );

    let warm_cache = TraceCache::from_env().with_store(TraceStore::at(&dir));
    let start = Instant::now();
    let warm = run_grid_with(&configs, 2, &warm_cache);
    let warm_s = start.elapsed().as_secs_f64();
    let ws = warm_cache.stats();
    println!(
        "warm store: {} runs in {warm_s:.2}s — {} synthesized, {} loaded from disk ({:.2}x)",
        warm.len(),
        ws.synthesized,
        ws.store.hits,
        cold_s / warm_s.max(1e-9),
    );
    assert_eq!(cold, warm, "replayed traces are bit-identical");
    println!("results bit-identical across cold and warm runs");

    if std::env::var("MEDSIM_TRACE_DIR").is_err() {
        std::fs::remove_dir_all(&dir).ok();
        println!("(scratch store removed; set MEDSIM_TRACE_DIR to keep one)");
    }
}
