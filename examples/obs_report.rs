//! Observability walkthrough: run a small figure-5-style machine with
//! event tracing, interval sampling and the per-run JSON report all
//! switched on, then print where the artifacts landed alongside the
//! headline numbers, the quantum-scheduler counters and the roofline
//! placement.
//!
//! ```sh
//! cargo run --release --example obs_report
//! # knobs (the programmatic defaults below yield to the environment):
//! MEDSIM_TRACE_EVENTS=/tmp/trace.json MEDSIM_REPORT_JSON=/tmp/report.json \
//!   MEDSIM_SAMPLE_CYCLES=1000 cargo run --release --example obs_report
//! ```
//!
//! The trace opens in Perfetto / `chrome://tracing`; the report is
//! plain JSON (`schema: medsim-run-report/v1`).

use medsim::core::report::{format_sched_counters, format_schedule_note};
use medsim::core::runreport::Roofline;
use medsim::core::sim::{SimConfig, Simulation};
use medsim::obs;
use medsim::workloads::{trace::SimdIsa, WorkloadSpec};

fn main() {
    let scale = std::env::var("MEDSIM_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(2e-4);
    // Switch everything on unless the environment already chose: the
    // env knobs resolve first, so a user-provided path wins and these
    // programmatic calls only fill the gaps.
    if !obs::tracing() {
        obs::set_trace(true, Some("medsim_trace.json"));
    }
    if obs::report_path().is_none() {
        obs::set_report_path(Some("medsim_run_report.json"));
    }
    if obs::sample_cycles() == 0 {
        obs::set_sample_cycles(1000);
    }

    let config = SimConfig::new(SimdIsa::Mom, 4)
        .with_cores(2)
        .with_spec(WorkloadSpec::new(scale));
    println!(
        "observed run: {} cores x {} contexts, MOM, scale {scale:.0e}",
        config.cores.max(1),
        config.threads
    );
    println!("{}", format_schedule_note(&config));

    let result = Simulation::run(&config);

    println!(
        "\ncycles {}  committed {}  EIPC {:.2}  L1 hit {:.1}%  L2 hit {:.1}%",
        result.cycles,
        result.committed,
        result.equiv_ipc(),
        result.l1_hit_rate * 100.0,
        result.l2_hit_rate * 100.0,
    );
    println!("{}", format_sched_counters(&result));

    // The report file carries the full roofline section; recompute the
    // headline placement here for the console.
    let r = Roofline {
        flop_proxy: result.committed_equiv,
        dram_bytes: 0, // console hint only; the report has real traffic
        cycles: result.cycles,
        peak_bytes_per_cycle: 4.0,
    };
    println!(
        "roofline: see the report JSON (achieved {:.3} equiv-ops/cycle against a 4 B/cycle DRDRAM roof)",
        r.achieved_flops_per_cycle()
    );

    if let Some(p) = obs::report_path() {
        println!("report:  {p}");
    }
    match obs::trace_path() {
        Some(p) if obs::tracing() => println!("trace:   {p} (open in Perfetto)"),
        _ => {}
    }
}
