//! Single-stream real-time analysis: can one hardware context sustain an
//! MPEG-2 encode, and how much does the streaming ISA buy?
//!
//! This is the paper's uni-threaded motivation: "SMT … cannot guarantee
//! that the frame rate constraints of a MPEG-2 video stream are met",
//! hence μ-SIMD extensions for single-stream performance. We run the
//! MPEG-2 encoder alone on one context under both ISAs and translate
//! cycles-per-macroblock into achievable SIF frame rates at 800 MHz.
//!
//! ```sh
//! cargo run --release --example mpeg2_stream
//! ```

use medsim::cpu::{Cpu, CpuConfig};
use medsim::mem::{MemConfig, MemSystem};
use medsim::workloads::trace::mpeg2_gen::Mpeg2EncGen;
use medsim::workloads::trace::{ChunkedStream, SimdIsa};

const MACROBLOCKS: u64 = 80;
const MB_PER_FRAME: f64 = 330.0; // SIF 352x240
const CLOCK_HZ: f64 = 800.0e6;

fn main() {
    println!("MPEG-2 encode, one hardware context, real memory system\n");
    let mut cycles_per_mb = Vec::new();
    for isa in SimdIsa::ALL {
        let mem = MemSystem::new(MemConfig::paper());
        let mut cpu = Cpu::new(CpuConfig::paper(1, isa), mem);
        let generator = Mpeg2EncGen::new(0, isa, MACROBLOCKS, 42);
        cpu.attach_thread(0, Box::new(ChunkedStream::new(generator)));
        assert!(cpu.run_to_idle(500_000_000), "encoder must finish");

        let stats = cpu.stats();
        let per_mb = stats.cycles as f64 / MACROBLOCKS as f64;
        let fps = CLOCK_HZ / (per_mb * MB_PER_FRAME);
        cycles_per_mb.push(per_mb);
        println!("{isa}:");
        println!("  instructions committed {:>12}", stats.committed());
        println!("  equivalent committed   {:>12}", stats.committed_equiv());
        println!("  cycles                 {:>12}", stats.cycles);
        println!("  cycles per macroblock  {:>12.0}", per_mb);
        println!("  achievable frame rate  {:>9.1} fps @ 800 MHz (SIF)", fps);
        println!();
    }
    println!(
        "MOM single-stream speedup over MMX: {:.2}x (the paper's ~20% EIPC edge at 1 thread)",
        cycles_per_mb[0] / cycles_per_mb[1]
    );
}
