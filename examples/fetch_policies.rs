//! Compare the four SMT fetch policies at 8 threads on both hierarchies
//! (a compact version of the paper's figures 6 and 8).
//!
//! ```sh
//! cargo run --release --example fetch_policies
//! ```

use medsim::core::metrics::EipcFactor;
use medsim::core::sim::{SimConfig, Simulation};
use medsim::cpu::FetchPolicy;
use medsim::mem::HierarchyKind;
use medsim::workloads::{trace::SimdIsa, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec::new(5e-4);
    let factor = EipcFactor::compute(&spec);

    for hierarchy in [HierarchyKind::Conventional, HierarchyKind::Decoupled] {
        println!("== 8 threads, {hierarchy} hierarchy ==");
        for isa in SimdIsa::ALL {
            print!("SMT+{isa}: ");
            let mut base = None;
            for policy in FetchPolicy::ALL {
                // OCOUNT needs the stream-length register: MOM only.
                if policy == FetchPolicy::OCount && isa == SimdIsa::Mmx {
                    continue;
                }
                let cfg = SimConfig::new(isa, 8)
                    .with_hierarchy(hierarchy)
                    .with_policy(policy)
                    .with_spec(spec);
                let v = Simulation::run(&cfg).figure_of_merit(&factor);
                let base_v = *base.get_or_insert(v);
                print!("{policy} {v:.2} ({:+.1}%)  ", (v / base_v - 1.0) * 100.0);
            }
            println!();
        }
        println!();
    }
    println!("(paper: policies gain up to 9% at 8 threads on the conventional");
    println!(" hierarchy; ICOUNT best for MMX, OCOUNT best for MOM)");
}
