//! Quickstart: run the paper's workload on one configuration and print
//! the key metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use medsim::core::metrics::EipcFactor;
use medsim::core::sim::{SimConfig, Simulation};
use medsim::mem::HierarchyKind;
use medsim::workloads::{trace::SimdIsa, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec::new(5e-4);

    println!("medsim quickstart: 4-thread SMT, conventional memory hierarchy\n");
    let factor = EipcFactor::compute(&spec);
    println!(
        "workload: {} MMX-equivalent instructions, {} MOM ({}x fusion)\n",
        factor.mmx_insts,
        factor.mom_insts,
        format_args!("{:.2}", factor.ratio()),
    );

    for isa in SimdIsa::ALL {
        let cfg = SimConfig::new(isa, 4)
            .with_hierarchy(HierarchyKind::Conventional)
            .with_spec(spec);
        let r = Simulation::run(&cfg);
        println!("SMT+{isa} (4 threads):");
        println!("  cycles               {:>12}", r.cycles);
        println!("  raw IPC              {:>12.2}", r.ipc());
        println!("  equivalent IPC       {:>12.2}", r.equiv_ipc());
        println!(
            "  figure of merit      {:>12.2}  (IPC for MMX, EIPC for MOM)",
            r.figure_of_merit(&factor)
        );
        println!("  L1 hit rate          {:>11.1}%", r.l1_hit_rate * 100.0);
        println!("  avg L1 latency       {:>12.2} cycles", r.l1_avg_latency);
        println!(
            "  branch mispredicts   {:>11.1}%",
            r.mispredict_rate * 100.0
        );
        println!();
    }
}
