/root/repo/target/debug/deps/medsim_core-05451eb1175f002e.d: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/metrics.rs crates/core/src/report.rs crates/core/src/sim.rs

/root/repo/target/debug/deps/libmedsim_core-05451eb1175f002e.rlib: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/metrics.rs crates/core/src/report.rs crates/core/src/sim.rs

/root/repo/target/debug/deps/libmedsim_core-05451eb1175f002e.rmeta: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/metrics.rs crates/core/src/report.rs crates/core/src/sim.rs

crates/core/src/lib.rs:
crates/core/src/experiments.rs:
crates/core/src/metrics.rs:
crates/core/src/report.rs:
crates/core/src/sim.rs:
