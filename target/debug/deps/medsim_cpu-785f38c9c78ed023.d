/root/repo/target/debug/deps/medsim_cpu-785f38c9c78ed023.d: crates/cpu/src/lib.rs crates/cpu/src/config.rs crates/cpu/src/fetch.rs crates/cpu/src/pipeline.rs crates/cpu/src/predictor.rs crates/cpu/src/rename.rs crates/cpu/src/stats.rs

/root/repo/target/debug/deps/medsim_cpu-785f38c9c78ed023: crates/cpu/src/lib.rs crates/cpu/src/config.rs crates/cpu/src/fetch.rs crates/cpu/src/pipeline.rs crates/cpu/src/predictor.rs crates/cpu/src/rename.rs crates/cpu/src/stats.rs

crates/cpu/src/lib.rs:
crates/cpu/src/config.rs:
crates/cpu/src/fetch.rs:
crates/cpu/src/pipeline.rs:
crates/cpu/src/predictor.rs:
crates/cpu/src/rename.rs:
crates/cpu/src/stats.rs:
