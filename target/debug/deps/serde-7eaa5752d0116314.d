/root/repo/target/debug/deps/serde-7eaa5752d0116314.d: crates/compat/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-7eaa5752d0116314.rlib: crates/compat/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-7eaa5752d0116314.rmeta: crates/compat/serde/src/lib.rs

crates/compat/serde/src/lib.rs:
