/root/repo/target/debug/deps/medsim-9db503cae121ea58.d: src/lib.rs

/root/repo/target/debug/deps/libmedsim-9db503cae121ea58.rlib: src/lib.rs

/root/repo/target/debug/deps/libmedsim-9db503cae121ea58.rmeta: src/lib.rs

src/lib.rs:
