/root/repo/target/debug/deps/serde_shim_derive-71b674c7da1f8fd3.d: crates/compat/serde_shim_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_shim_derive-71b674c7da1f8fd3.so: crates/compat/serde_shim_derive/src/lib.rs

crates/compat/serde_shim_derive/src/lib.rs:
