/root/repo/target/debug/deps/medsim_mem-d88b99e3223476bc.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/dram.rs crates/mem/src/mshr.rs crates/mem/src/stats.rs crates/mem/src/system.rs crates/mem/src/wbuf.rs

/root/repo/target/debug/deps/libmedsim_mem-d88b99e3223476bc.rlib: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/dram.rs crates/mem/src/mshr.rs crates/mem/src/stats.rs crates/mem/src/system.rs crates/mem/src/wbuf.rs

/root/repo/target/debug/deps/libmedsim_mem-d88b99e3223476bc.rmeta: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/dram.rs crates/mem/src/mshr.rs crates/mem/src/stats.rs crates/mem/src/system.rs crates/mem/src/wbuf.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/config.rs:
crates/mem/src/dram.rs:
crates/mem/src/mshr.rs:
crates/mem/src/stats.rs:
crates/mem/src/system.rs:
crates/mem/src/wbuf.rs:
