/root/repo/target/debug/deps/serde-243da55b27234ca7.d: crates/compat/serde/src/lib.rs

/root/repo/target/debug/deps/serde-243da55b27234ca7: crates/compat/serde/src/lib.rs

crates/compat/serde/src/lib.rs:
