/root/repo/target/debug/deps/property_invariants-b8d60916e0ef6433.d: tests/property_invariants.rs

/root/repo/target/debug/deps/property_invariants-b8d60916e0ef6433: tests/property_invariants.rs

tests/property_invariants.rs:
