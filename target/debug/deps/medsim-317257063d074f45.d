/root/repo/target/debug/deps/medsim-317257063d074f45.d: src/lib.rs

/root/repo/target/debug/deps/medsim-317257063d074f45: src/lib.rs

src/lib.rs:
