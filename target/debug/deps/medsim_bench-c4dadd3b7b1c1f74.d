/root/repo/target/debug/deps/medsim_bench-c4dadd3b7b1c1f74.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmedsim_bench-c4dadd3b7b1c1f74.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmedsim_bench-c4dadd3b7b1c1f74.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
