/root/repo/target/debug/deps/end_to_end-36fff3b742afa493.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-36fff3b742afa493: tests/end_to_end.rs

tests/end_to_end.rs:
