/root/repo/target/debug/deps/medsim_bench-2618a4069215ed83.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmedsim_bench-2618a4069215ed83.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmedsim_bench-2618a4069215ed83.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
