/root/repo/target/debug/deps/medsim_cpu-4635a638bd95d9ed.d: crates/cpu/src/lib.rs crates/cpu/src/config.rs crates/cpu/src/fetch.rs crates/cpu/src/pipeline.rs crates/cpu/src/predictor.rs crates/cpu/src/rename.rs crates/cpu/src/stats.rs

/root/repo/target/debug/deps/libmedsim_cpu-4635a638bd95d9ed.rlib: crates/cpu/src/lib.rs crates/cpu/src/config.rs crates/cpu/src/fetch.rs crates/cpu/src/pipeline.rs crates/cpu/src/predictor.rs crates/cpu/src/rename.rs crates/cpu/src/stats.rs

/root/repo/target/debug/deps/libmedsim_cpu-4635a638bd95d9ed.rmeta: crates/cpu/src/lib.rs crates/cpu/src/config.rs crates/cpu/src/fetch.rs crates/cpu/src/pipeline.rs crates/cpu/src/predictor.rs crates/cpu/src/rename.rs crates/cpu/src/stats.rs

crates/cpu/src/lib.rs:
crates/cpu/src/config.rs:
crates/cpu/src/fetch.rs:
crates/cpu/src/pipeline.rs:
crates/cpu/src/predictor.rs:
crates/cpu/src/rename.rs:
crates/cpu/src/stats.rs:
