/root/repo/target/debug/deps/serde_shim_derive-9d997dd3ab552ed6.d: crates/compat/serde_shim_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_shim_derive-9d997dd3ab552ed6.so: crates/compat/serde_shim_derive/src/lib.rs

crates/compat/serde_shim_derive/src/lib.rs:
