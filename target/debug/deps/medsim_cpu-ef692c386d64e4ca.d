/root/repo/target/debug/deps/medsim_cpu-ef692c386d64e4ca.d: crates/cpu/src/lib.rs crates/cpu/src/config.rs crates/cpu/src/fetch.rs crates/cpu/src/pipeline.rs crates/cpu/src/predictor.rs crates/cpu/src/rename.rs crates/cpu/src/stats.rs

/root/repo/target/debug/deps/libmedsim_cpu-ef692c386d64e4ca.rlib: crates/cpu/src/lib.rs crates/cpu/src/config.rs crates/cpu/src/fetch.rs crates/cpu/src/pipeline.rs crates/cpu/src/predictor.rs crates/cpu/src/rename.rs crates/cpu/src/stats.rs

/root/repo/target/debug/deps/libmedsim_cpu-ef692c386d64e4ca.rmeta: crates/cpu/src/lib.rs crates/cpu/src/config.rs crates/cpu/src/fetch.rs crates/cpu/src/pipeline.rs crates/cpu/src/predictor.rs crates/cpu/src/rename.rs crates/cpu/src/stats.rs

crates/cpu/src/lib.rs:
crates/cpu/src/config.rs:
crates/cpu/src/fetch.rs:
crates/cpu/src/pipeline.rs:
crates/cpu/src/predictor.rs:
crates/cpu/src/rename.rs:
crates/cpu/src/stats.rs:
