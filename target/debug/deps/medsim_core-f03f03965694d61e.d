/root/repo/target/debug/deps/medsim_core-f03f03965694d61e.d: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/metrics.rs crates/core/src/report.rs crates/core/src/sim.rs

/root/repo/target/debug/deps/medsim_core-f03f03965694d61e: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/metrics.rs crates/core/src/report.rs crates/core/src/sim.rs

crates/core/src/lib.rs:
crates/core/src/experiments.rs:
crates/core/src/metrics.rs:
crates/core/src/report.rs:
crates/core/src/sim.rs:
