/root/repo/target/debug/deps/medsim_bench-186f087a4a2db40b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/medsim_bench-186f087a4a2db40b: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
