/root/repo/target/debug/deps/medsim_isa-21ce923a2d119595.d: crates/isa/src/lib.rs crates/isa/src/disasm.rs crates/isa/src/elem.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/mmx.rs crates/isa/src/mom.rs crates/isa/src/op.rs crates/isa/src/regs.rs crates/isa/src/scalar.rs crates/isa/src/semantics/mod.rs crates/isa/src/semantics/acc.rs crates/isa/src/semantics/lanes.rs crates/isa/src/semantics/mmx_exec.rs crates/isa/src/semantics/mom_exec.rs

/root/repo/target/debug/deps/libmedsim_isa-21ce923a2d119595.rlib: crates/isa/src/lib.rs crates/isa/src/disasm.rs crates/isa/src/elem.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/mmx.rs crates/isa/src/mom.rs crates/isa/src/op.rs crates/isa/src/regs.rs crates/isa/src/scalar.rs crates/isa/src/semantics/mod.rs crates/isa/src/semantics/acc.rs crates/isa/src/semantics/lanes.rs crates/isa/src/semantics/mmx_exec.rs crates/isa/src/semantics/mom_exec.rs

/root/repo/target/debug/deps/libmedsim_isa-21ce923a2d119595.rmeta: crates/isa/src/lib.rs crates/isa/src/disasm.rs crates/isa/src/elem.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/mmx.rs crates/isa/src/mom.rs crates/isa/src/op.rs crates/isa/src/regs.rs crates/isa/src/scalar.rs crates/isa/src/semantics/mod.rs crates/isa/src/semantics/acc.rs crates/isa/src/semantics/lanes.rs crates/isa/src/semantics/mmx_exec.rs crates/isa/src/semantics/mom_exec.rs

crates/isa/src/lib.rs:
crates/isa/src/disasm.rs:
crates/isa/src/elem.rs:
crates/isa/src/encode.rs:
crates/isa/src/inst.rs:
crates/isa/src/mmx.rs:
crates/isa/src/mom.rs:
crates/isa/src/op.rs:
crates/isa/src/regs.rs:
crates/isa/src/scalar.rs:
crates/isa/src/semantics/mod.rs:
crates/isa/src/semantics/acc.rs:
crates/isa/src/semantics/lanes.rs:
crates/isa/src/semantics/mmx_exec.rs:
crates/isa/src/semantics/mom_exec.rs:
