/root/repo/target/debug/deps/medsim-92a70b0cfe6530da.d: src/lib.rs

/root/repo/target/debug/deps/libmedsim-92a70b0cfe6530da.rlib: src/lib.rs

/root/repo/target/debug/deps/libmedsim-92a70b0cfe6530da.rmeta: src/lib.rs

src/lib.rs:
