/root/repo/target/debug/deps/medsim_workloads-7063993c3db045fa.d: crates/workloads/src/lib.rs crates/workloads/src/kernels/mod.rs crates/workloads/src/kernels/color.rs crates/workloads/src/kernels/dct.rs crates/workloads/src/kernels/gsm.rs crates/workloads/src/kernels/huffman.rs crates/workloads/src/kernels/mesa3d.rs crates/workloads/src/kernels/motion.rs crates/workloads/src/kernels/quant.rs crates/workloads/src/kernels/zigzag.rs crates/workloads/src/layout.rs crates/workloads/src/mix.rs crates/workloads/src/suite.rs crates/workloads/src/trace/mod.rs crates/workloads/src/trace/emitter.rs crates/workloads/src/trace/gsm_gen.rs crates/workloads/src/trace/jpeg_gen.rs crates/workloads/src/trace/mesa_gen.rs crates/workloads/src/trace/mpeg2_gen.rs crates/workloads/src/trace/scalar_phases.rs crates/workloads/src/trace/simd_kernels.rs

/root/repo/target/debug/deps/libmedsim_workloads-7063993c3db045fa.rlib: crates/workloads/src/lib.rs crates/workloads/src/kernels/mod.rs crates/workloads/src/kernels/color.rs crates/workloads/src/kernels/dct.rs crates/workloads/src/kernels/gsm.rs crates/workloads/src/kernels/huffman.rs crates/workloads/src/kernels/mesa3d.rs crates/workloads/src/kernels/motion.rs crates/workloads/src/kernels/quant.rs crates/workloads/src/kernels/zigzag.rs crates/workloads/src/layout.rs crates/workloads/src/mix.rs crates/workloads/src/suite.rs crates/workloads/src/trace/mod.rs crates/workloads/src/trace/emitter.rs crates/workloads/src/trace/gsm_gen.rs crates/workloads/src/trace/jpeg_gen.rs crates/workloads/src/trace/mesa_gen.rs crates/workloads/src/trace/mpeg2_gen.rs crates/workloads/src/trace/scalar_phases.rs crates/workloads/src/trace/simd_kernels.rs

/root/repo/target/debug/deps/libmedsim_workloads-7063993c3db045fa.rmeta: crates/workloads/src/lib.rs crates/workloads/src/kernels/mod.rs crates/workloads/src/kernels/color.rs crates/workloads/src/kernels/dct.rs crates/workloads/src/kernels/gsm.rs crates/workloads/src/kernels/huffman.rs crates/workloads/src/kernels/mesa3d.rs crates/workloads/src/kernels/motion.rs crates/workloads/src/kernels/quant.rs crates/workloads/src/kernels/zigzag.rs crates/workloads/src/layout.rs crates/workloads/src/mix.rs crates/workloads/src/suite.rs crates/workloads/src/trace/mod.rs crates/workloads/src/trace/emitter.rs crates/workloads/src/trace/gsm_gen.rs crates/workloads/src/trace/jpeg_gen.rs crates/workloads/src/trace/mesa_gen.rs crates/workloads/src/trace/mpeg2_gen.rs crates/workloads/src/trace/scalar_phases.rs crates/workloads/src/trace/simd_kernels.rs

crates/workloads/src/lib.rs:
crates/workloads/src/kernels/mod.rs:
crates/workloads/src/kernels/color.rs:
crates/workloads/src/kernels/dct.rs:
crates/workloads/src/kernels/gsm.rs:
crates/workloads/src/kernels/huffman.rs:
crates/workloads/src/kernels/mesa3d.rs:
crates/workloads/src/kernels/motion.rs:
crates/workloads/src/kernels/quant.rs:
crates/workloads/src/kernels/zigzag.rs:
crates/workloads/src/layout.rs:
crates/workloads/src/mix.rs:
crates/workloads/src/suite.rs:
crates/workloads/src/trace/mod.rs:
crates/workloads/src/trace/emitter.rs:
crates/workloads/src/trace/gsm_gen.rs:
crates/workloads/src/trace/jpeg_gen.rs:
crates/workloads/src/trace/mesa_gen.rs:
crates/workloads/src/trace/mpeg2_gen.rs:
crates/workloads/src/trace/scalar_phases.rs:
crates/workloads/src/trace/simd_kernels.rs:
