/root/repo/target/debug/deps/serde_shim_derive-536b93f85f1da7b9.d: crates/compat/serde_shim_derive/src/lib.rs

/root/repo/target/debug/deps/serde_shim_derive-536b93f85f1da7b9: crates/compat/serde_shim_derive/src/lib.rs

crates/compat/serde_shim_derive/src/lib.rs:
