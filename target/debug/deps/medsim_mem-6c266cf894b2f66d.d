/root/repo/target/debug/deps/medsim_mem-6c266cf894b2f66d.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/dram.rs crates/mem/src/mshr.rs crates/mem/src/stats.rs crates/mem/src/system.rs crates/mem/src/wbuf.rs

/root/repo/target/debug/deps/libmedsim_mem-6c266cf894b2f66d.rlib: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/dram.rs crates/mem/src/mshr.rs crates/mem/src/stats.rs crates/mem/src/system.rs crates/mem/src/wbuf.rs

/root/repo/target/debug/deps/libmedsim_mem-6c266cf894b2f66d.rmeta: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/dram.rs crates/mem/src/mshr.rs crates/mem/src/stats.rs crates/mem/src/system.rs crates/mem/src/wbuf.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/config.rs:
crates/mem/src/dram.rs:
crates/mem/src/mshr.rs:
crates/mem/src/stats.rs:
crates/mem/src/system.rs:
crates/mem/src/wbuf.rs:
