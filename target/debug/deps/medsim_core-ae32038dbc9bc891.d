/root/repo/target/debug/deps/medsim_core-ae32038dbc9bc891.d: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/metrics.rs crates/core/src/report.rs crates/core/src/sim.rs

/root/repo/target/debug/deps/libmedsim_core-ae32038dbc9bc891.rlib: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/metrics.rs crates/core/src/report.rs crates/core/src/sim.rs

/root/repo/target/debug/deps/libmedsim_core-ae32038dbc9bc891.rmeta: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/metrics.rs crates/core/src/report.rs crates/core/src/sim.rs

crates/core/src/lib.rs:
crates/core/src/experiments.rs:
crates/core/src/metrics.rs:
crates/core/src/report.rs:
crates/core/src/sim.rs:
