/root/repo/target/debug/deps/serde-c6477105c396f3d4.d: crates/compat/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-c6477105c396f3d4.rlib: crates/compat/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-c6477105c396f3d4.rmeta: crates/compat/serde/src/lib.rs

crates/compat/serde/src/lib.rs:
