/root/repo/target/debug/deps/workload_shapes-06584126dacb65b5.d: tests/workload_shapes.rs

/root/repo/target/debug/deps/workload_shapes-06584126dacb65b5: tests/workload_shapes.rs

tests/workload_shapes.rs:
