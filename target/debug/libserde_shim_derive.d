/root/repo/target/debug/libserde_shim_derive.so: /root/repo/crates/compat/serde_shim_derive/src/lib.rs
