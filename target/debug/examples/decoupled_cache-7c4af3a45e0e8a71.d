/root/repo/target/debug/examples/decoupled_cache-7c4af3a45e0e8a71.d: examples/decoupled_cache.rs

/root/repo/target/debug/examples/decoupled_cache-7c4af3a45e0e8a71: examples/decoupled_cache.rs

examples/decoupled_cache.rs:
