/root/repo/target/debug/examples/codec_pipeline-80514f9230462cea.d: examples/codec_pipeline.rs

/root/repo/target/debug/examples/codec_pipeline-80514f9230462cea: examples/codec_pipeline.rs

examples/codec_pipeline.rs:
