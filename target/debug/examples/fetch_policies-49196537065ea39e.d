/root/repo/target/debug/examples/fetch_policies-49196537065ea39e.d: examples/fetch_policies.rs

/root/repo/target/debug/examples/fetch_policies-49196537065ea39e: examples/fetch_policies.rs

examples/fetch_policies.rs:
