/root/repo/target/debug/examples/quickstart-f7c475268dd85f56.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f7c475268dd85f56: examples/quickstart.rs

examples/quickstart.rs:
