/root/repo/target/debug/examples/mpeg2_stream-12ffb7a141b3ea27.d: examples/mpeg2_stream.rs

/root/repo/target/debug/examples/mpeg2_stream-12ffb7a141b3ea27: examples/mpeg2_stream.rs

examples/mpeg2_stream.rs:
