/root/repo/target/release/deps/table2_workload-18a5083089fbfe61.d: crates/bench/benches/table2_workload.rs

/root/repo/target/release/deps/table2_workload-18a5083089fbfe61: crates/bench/benches/table2_workload.rs

crates/bench/benches/table2_workload.rs:
