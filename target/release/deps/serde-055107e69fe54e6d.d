/root/repo/target/release/deps/serde-055107e69fe54e6d.d: crates/compat/serde/src/lib.rs

/root/repo/target/release/deps/libserde-055107e69fe54e6d.rlib: crates/compat/serde/src/lib.rs

/root/repo/target/release/deps/libserde-055107e69fe54e6d.rmeta: crates/compat/serde/src/lib.rs

crates/compat/serde/src/lib.rs:
