/root/repo/target/release/deps/fig9_hierarchy-fd9894d20324a8ad.d: crates/bench/benches/fig9_hierarchy.rs

/root/repo/target/release/deps/fig9_hierarchy-fd9894d20324a8ad: crates/bench/benches/fig9_hierarchy.rs

crates/bench/benches/fig9_hierarchy.rs:
