/root/repo/target/release/deps/serde-5fc612897f75ee3e.d: crates/compat/serde/src/lib.rs

/root/repo/target/release/deps/serde-5fc612897f75ee3e: crates/compat/serde/src/lib.rs

crates/compat/serde/src/lib.rs:
