/root/repo/target/release/deps/ablations-ae33084f1cb4f553.d: crates/bench/benches/ablations.rs

/root/repo/target/release/deps/ablations-ae33084f1cb4f553: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
