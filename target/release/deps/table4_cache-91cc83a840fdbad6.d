/root/repo/target/release/deps/table4_cache-91cc83a840fdbad6.d: crates/bench/benches/table4_cache.rs

/root/repo/target/release/deps/table4_cache-91cc83a840fdbad6: crates/bench/benches/table4_cache.rs

crates/bench/benches/table4_cache.rs:
