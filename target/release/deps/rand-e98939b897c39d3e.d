/root/repo/target/release/deps/rand-e98939b897c39d3e.d: crates/compat/rand/src/lib.rs

/root/repo/target/release/deps/librand-e98939b897c39d3e.rlib: crates/compat/rand/src/lib.rs

/root/repo/target/release/deps/librand-e98939b897c39d3e.rmeta: crates/compat/rand/src/lib.rs

crates/compat/rand/src/lib.rs:
