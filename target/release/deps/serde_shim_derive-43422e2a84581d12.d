/root/repo/target/release/deps/serde_shim_derive-43422e2a84581d12.d: crates/compat/serde_shim_derive/src/lib.rs

/root/repo/target/release/deps/serde_shim_derive-43422e2a84581d12: crates/compat/serde_shim_derive/src/lib.rs

crates/compat/serde_shim_derive/src/lib.rs:
