/root/repo/target/release/deps/table1_params-6a1eeb31c1a033c2.d: crates/bench/benches/table1_params.rs

/root/repo/target/release/deps/table1_params-6a1eeb31c1a033c2: crates/bench/benches/table1_params.rs

crates/bench/benches/table1_params.rs:
