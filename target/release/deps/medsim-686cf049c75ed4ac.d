/root/repo/target/release/deps/medsim-686cf049c75ed4ac.d: src/lib.rs

/root/repo/target/release/deps/libmedsim-686cf049c75ed4ac.rlib: src/lib.rs

/root/repo/target/release/deps/libmedsim-686cf049c75ed4ac.rmeta: src/lib.rs

src/lib.rs:
