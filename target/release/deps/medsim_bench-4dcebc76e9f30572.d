/root/repo/target/release/deps/medsim_bench-4dcebc76e9f30572.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/medsim_bench-4dcebc76e9f30572: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
