/root/repo/target/release/deps/rand-37a8b6ec04ac4e94.d: crates/compat/rand/src/lib.rs

/root/repo/target/release/deps/rand-37a8b6ec04ac4e94: crates/compat/rand/src/lib.rs

crates/compat/rand/src/lib.rs:
