/root/repo/target/release/deps/fig8_decoupled-74327ee473a91424.d: crates/bench/benches/fig8_decoupled.rs

/root/repo/target/release/deps/fig8_decoupled-74327ee473a91424: crates/bench/benches/fig8_decoupled.rs

crates/bench/benches/fig8_decoupled.rs:
