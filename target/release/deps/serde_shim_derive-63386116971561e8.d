/root/repo/target/release/deps/serde_shim_derive-63386116971561e8.d: crates/compat/serde_shim_derive/src/lib.rs

/root/repo/target/release/deps/libserde_shim_derive-63386116971561e8.so: crates/compat/serde_shim_derive/src/lib.rs

crates/compat/serde_shim_derive/src/lib.rs:
