/root/repo/target/release/deps/fig4_ideal-9f33cbd81eb89e48.d: crates/bench/benches/fig4_ideal.rs

/root/repo/target/release/deps/fig4_ideal-9f33cbd81eb89e48: crates/bench/benches/fig4_ideal.rs

crates/bench/benches/fig4_ideal.rs:
