/root/repo/target/release/deps/fig5_real-feb89abfea26d884.d: crates/bench/benches/fig5_real.rs

/root/repo/target/release/deps/fig5_real-feb89abfea26d884: crates/bench/benches/fig5_real.rs

crates/bench/benches/fig5_real.rs:
