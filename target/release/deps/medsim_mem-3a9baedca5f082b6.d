/root/repo/target/release/deps/medsim_mem-3a9baedca5f082b6.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/dram.rs crates/mem/src/mshr.rs crates/mem/src/stats.rs crates/mem/src/system.rs crates/mem/src/wbuf.rs

/root/repo/target/release/deps/medsim_mem-3a9baedca5f082b6: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/dram.rs crates/mem/src/mshr.rs crates/mem/src/stats.rs crates/mem/src/system.rs crates/mem/src/wbuf.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/config.rs:
crates/mem/src/dram.rs:
crates/mem/src/mshr.rs:
crates/mem/src/stats.rs:
crates/mem/src/system.rs:
crates/mem/src/wbuf.rs:
