/root/repo/target/release/deps/medsim_core-a65c6315be782137.d: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/metrics.rs crates/core/src/report.rs crates/core/src/sim.rs

/root/repo/target/release/deps/medsim_core-a65c6315be782137: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/metrics.rs crates/core/src/report.rs crates/core/src/sim.rs

crates/core/src/lib.rs:
crates/core/src/experiments.rs:
crates/core/src/metrics.rs:
crates/core/src/report.rs:
crates/core/src/sim.rs:
