/root/repo/target/release/deps/medsim_cpu-850f46d88c3b7ac8.d: crates/cpu/src/lib.rs crates/cpu/src/config.rs crates/cpu/src/fetch.rs crates/cpu/src/pipeline.rs crates/cpu/src/predictor.rs crates/cpu/src/rename.rs crates/cpu/src/stats.rs

/root/repo/target/release/deps/medsim_cpu-850f46d88c3b7ac8: crates/cpu/src/lib.rs crates/cpu/src/config.rs crates/cpu/src/fetch.rs crates/cpu/src/pipeline.rs crates/cpu/src/predictor.rs crates/cpu/src/rename.rs crates/cpu/src/stats.rs

crates/cpu/src/lib.rs:
crates/cpu/src/config.rs:
crates/cpu/src/fetch.rs:
crates/cpu/src/pipeline.rs:
crates/cpu/src/predictor.rs:
crates/cpu/src/rename.rs:
crates/cpu/src/stats.rs:
