/root/repo/target/release/deps/criterion-c2435637257a05bd.d: crates/compat/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-c2435637257a05bd.rlib: crates/compat/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-c2435637257a05bd.rmeta: crates/compat/criterion/src/lib.rs

crates/compat/criterion/src/lib.rs:
