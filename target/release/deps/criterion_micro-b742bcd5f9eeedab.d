/root/repo/target/release/deps/criterion_micro-b742bcd5f9eeedab.d: crates/bench/benches/criterion_micro.rs

/root/repo/target/release/deps/criterion_micro-b742bcd5f9eeedab: crates/bench/benches/criterion_micro.rs

crates/bench/benches/criterion_micro.rs:
