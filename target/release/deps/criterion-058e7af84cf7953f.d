/root/repo/target/release/deps/criterion-058e7af84cf7953f.d: crates/compat/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-058e7af84cf7953f: crates/compat/criterion/src/lib.rs

crates/compat/criterion/src/lib.rs:
