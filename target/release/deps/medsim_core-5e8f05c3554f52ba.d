/root/repo/target/release/deps/medsim_core-5e8f05c3554f52ba.d: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/metrics.rs crates/core/src/report.rs crates/core/src/sim.rs

/root/repo/target/release/deps/libmedsim_core-5e8f05c3554f52ba.rlib: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/metrics.rs crates/core/src/report.rs crates/core/src/sim.rs

/root/repo/target/release/deps/libmedsim_core-5e8f05c3554f52ba.rmeta: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/metrics.rs crates/core/src/report.rs crates/core/src/sim.rs

crates/core/src/lib.rs:
crates/core/src/experiments.rs:
crates/core/src/metrics.rs:
crates/core/src/report.rs:
crates/core/src/sim.rs:
