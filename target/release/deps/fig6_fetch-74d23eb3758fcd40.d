/root/repo/target/release/deps/fig6_fetch-74d23eb3758fcd40.d: crates/bench/benches/fig6_fetch.rs

/root/repo/target/release/deps/fig6_fetch-74d23eb3758fcd40: crates/bench/benches/fig6_fetch.rs

crates/bench/benches/fig6_fetch.rs:
