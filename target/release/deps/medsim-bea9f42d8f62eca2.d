/root/repo/target/release/deps/medsim-bea9f42d8f62eca2.d: src/lib.rs

/root/repo/target/release/deps/medsim-bea9f42d8f62eca2: src/lib.rs

src/lib.rs:
