/root/repo/target/release/deps/medsim_bench-57c8655f14f44a0a.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmedsim_bench-57c8655f14f44a0a.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmedsim_bench-57c8655f14f44a0a.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
