/root/repo/target/release/deps/table3_breakdown-411d70f3e11794cb.d: crates/bench/benches/table3_breakdown.rs

/root/repo/target/release/deps/table3_breakdown-411d70f3e11794cb: crates/bench/benches/table3_breakdown.rs

crates/bench/benches/table3_breakdown.rs:
