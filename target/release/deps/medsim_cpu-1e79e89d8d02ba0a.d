/root/repo/target/release/deps/medsim_cpu-1e79e89d8d02ba0a.d: crates/cpu/src/lib.rs crates/cpu/src/config.rs crates/cpu/src/fetch.rs crates/cpu/src/pipeline.rs crates/cpu/src/predictor.rs crates/cpu/src/rename.rs crates/cpu/src/stats.rs

/root/repo/target/release/deps/libmedsim_cpu-1e79e89d8d02ba0a.rlib: crates/cpu/src/lib.rs crates/cpu/src/config.rs crates/cpu/src/fetch.rs crates/cpu/src/pipeline.rs crates/cpu/src/predictor.rs crates/cpu/src/rename.rs crates/cpu/src/stats.rs

/root/repo/target/release/deps/libmedsim_cpu-1e79e89d8d02ba0a.rmeta: crates/cpu/src/lib.rs crates/cpu/src/config.rs crates/cpu/src/fetch.rs crates/cpu/src/pipeline.rs crates/cpu/src/predictor.rs crates/cpu/src/rename.rs crates/cpu/src/stats.rs

crates/cpu/src/lib.rs:
crates/cpu/src/config.rs:
crates/cpu/src/fetch.rs:
crates/cpu/src/pipeline.rs:
crates/cpu/src/predictor.rs:
crates/cpu/src/rename.rs:
crates/cpu/src/stats.rs:
