/root/repo/target/release/examples/quickstart-ffd8fe6ada7cccfd.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-ffd8fe6ada7cccfd: examples/quickstart.rs

examples/quickstart.rs:
