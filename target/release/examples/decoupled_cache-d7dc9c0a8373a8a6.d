/root/repo/target/release/examples/decoupled_cache-d7dc9c0a8373a8a6.d: examples/decoupled_cache.rs

/root/repo/target/release/examples/decoupled_cache-d7dc9c0a8373a8a6: examples/decoupled_cache.rs

examples/decoupled_cache.rs:
