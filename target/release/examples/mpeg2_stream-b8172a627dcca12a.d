/root/repo/target/release/examples/mpeg2_stream-b8172a627dcca12a.d: examples/mpeg2_stream.rs

/root/repo/target/release/examples/mpeg2_stream-b8172a627dcca12a: examples/mpeg2_stream.rs

examples/mpeg2_stream.rs:
