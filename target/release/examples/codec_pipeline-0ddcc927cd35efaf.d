/root/repo/target/release/examples/codec_pipeline-0ddcc927cd35efaf.d: examples/codec_pipeline.rs

/root/repo/target/release/examples/codec_pipeline-0ddcc927cd35efaf: examples/codec_pipeline.rs

examples/codec_pipeline.rs:
