/root/repo/target/release/examples/fetch_policies-713d77a042e0c8a3.d: examples/fetch_policies.rs

/root/repo/target/release/examples/fetch_policies-713d77a042e0c8a3: examples/fetch_policies.rs

examples/fetch_policies.rs:
