//! # medsim — a DLP+TLP media-processor simulator
//!
//! A full reproduction of *"DLP + TLP Processors for the Next Generation
//! of Media Workloads"* (Corbal, Espasa, Valero — HPCA 2001): a
//! cycle-level SMT out-of-order processor with two μ-SIMD extensions
//! (MMX-like packed and MOM streaming-vector), a banked two-level cache
//! hierarchy with a Direct Rambus memory system, the paper's
//! eight-program MPEG-4-style multiprogrammed workload, and drivers that
//! regenerate every table and figure of the evaluation.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`isa`] (`medsim-isa`) — instruction sets and functional semantics;
//! * [`workloads`] (`medsim-workloads`) — media kernels and trace
//!   generators;
//! * [`trace`] (`medsim-trace`) — packed trace encoding, the persistent
//!   on-disk trace store and the streaming decoder;
//! * [`mem`] (`medsim-mem`) — the memory hierarchy;
//! * [`cpu`] (`medsim-cpu`) — the SMT pipeline;
//! * [`core`] (`medsim-core`) — simulation facade, metrics, experiments;
//! * [`obs`] (`medsim-obs`) — zero-cost-when-off event tracing,
//!   interval sampling and per-run report plumbing
//!   (`MEDSIM_TRACE_EVENTS`, `MEDSIM_SAMPLE_CYCLES`,
//!   `MEDSIM_REPORT_JSON`).
//!
//! ## Quickstart
//!
//! ```no_run
//! use medsim::core::sim::{SimConfig, Simulation};
//! use medsim::workloads::{trace::SimdIsa, WorkloadSpec};
//!
//! // An 8-thread SMT+MOM processor on the paper's workload.
//! let cfg = SimConfig::new(SimdIsa::Mom, 8).with_spec(WorkloadSpec::new(0.001));
//! let result = Simulation::run(&cfg);
//! println!("equivalent IPC: {:.2}", result.equiv_ipc());
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench/benches/`
//! for the per-table/figure reproduction harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use medsim_core as core;
pub use medsim_cpu as cpu;
pub use medsim_isa as isa;
pub use medsim_mem as mem;
pub use medsim_obs as obs;
pub use medsim_trace as trace;
pub use medsim_workloads as workloads;
